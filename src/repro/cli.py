"""Command-line interface: experiments plus the collection-service round trip.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig4 --quick
    python -m repro.cli run table2 --output table2.txt
    python -m repro.cli run fig9 --full --json fig9.json

``run`` executes one experiment module (quick preset by default), prints the
rendered text table, and can additionally persist sweep-style results to JSON
for later analysis or plotting.

The service subcommands drive a full client → bytes → server round trip from
the shell.  ``encode`` plays the client population (simulated from one of
the named datasets) and writes serialized report frames; ``aggregate`` plays
the server, feeding the frames to an
:class:`~repro.service.AggregationSession` and printing the estimated
marginals.  The two halves only share the spec file — exactly the
out-of-band contract of a deployed collector::

    python -m repro.cli encode --protocol InpHT --epsilon 1.1 --width 2 \\
        --dataset taxi -n 10000 -d 8 --seed 7 --batch-size 2500 \\
        --spec-out spec.json \\
      | python -m repro.cli aggregate --spec spec.json --dimension 8 \\
            --json marginals.json

``aggregate --checkpoint`` persists the session afterwards and ``--restore``
resumes one, so an interrupted collection continues bit-for-bit.

``serve`` and ``load`` replace the shell pipe with real sockets: ``serve``
runs the asyncio :class:`~repro.server.CollectionServer` (HELLO spec
handshake, sharded sessions, periodic + shutdown checkpoints, graceful
SIGINT/SIGTERM or ``--stop-after-reports`` shutdown printing the
estimates), and ``load`` drives a :class:`~repro.server.LoadGenerator`
client fleet at it::

    repro serve --protocol InpRR --epsilon 1.1 --width 2 --dimension 8 \\
        --port 7311 --shards 4 --stop-after-reports 10000 &
    repro load --protocol InpRR --epsilon 1.1 --width 2 --dimension 8 \\
        --port 7311 --clients 100 --dataset taxi -n 10000 --batch-size 500
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import signal
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core.backends import BACKEND_ENV_VAR, set_default_backend
from .core.domain import Domain
from .core.exceptions import ReproError
from .core.rng import spawn_rngs
from .experiments import (
    categorical,
    fig3_taxi_heatmap,
    fig4_vary_n,
    fig5_vary_k,
    fig6_vary_d_em,
    fig7_chi2,
    fig8_chow_liu,
    fig9_vary_eps,
    fig10_freq_oracles,
    table2_bounds,
    table3_em_failures,
)
from .execution import available_executors
from .experiments.config import SweepConfig
from .experiments.harness import DATASET_NAMES, SweepResult, make_dataset
from .io import load_protocol_spec, save_protocol_spec, save_sweep_json
from .observability import configure_logging, get_logger
from .protocols.registry import available_protocols, make_protocol
from .resilience import defaults as resilience_defaults
from .server import (
    CollectionServer,
    LoadGenerator,
    MultiProcessCollector,
    install_uvloop,
)
from .service import AggregationSession, ProtocolSpec, split_report_frames
from .topology import ROUTING_POLICIES

__all__ = ["EXPERIMENTS", "main"]

#: Experiment name -> (module, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig3": (fig3_taxi_heatmap, "taxi attribute-correlation heat map (Figure 3)"),
    "fig4": (fig4_vary_n, "error vs population size N (Figure 4)"),
    "fig5": (fig5_vary_k, "error vs marginal width k (Figure 5)"),
    "fig6": (fig6_vary_d_em, "InpEM baseline vs InpHT/MargPS at larger d (Figure 6)"),
    "fig7": (fig7_chi2, "chi-squared association tests (Figure 7)"),
    "fig8": (fig8_chow_liu, "Chow-Liu dependency trees (Figure 8)"),
    "fig9": (fig9_vary_eps, "error vs privacy parameter epsilon (Figure 9)"),
    "fig10": (fig10_freq_oracles, "frequency-oracle comparison (Figure 10)"),
    "table2": (table2_bounds, "communication/error bounds (Table 2)"),
    "table3": (table3_em_failures, "InpEM failure rates (Table 3)"),
    "categorical": (categorical, "categorical marginals via binary encoding (Cor. 6.1)"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'Marginal Release "
        "Under Local Differential Privacy' (SIGMOD 2018).",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default="info",
        help="status-logging threshold for every subcommand (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit status logs as one JSON object per line instead of text",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the available experiments and protocols"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable listing (experiments, protocols and "
        "their accepted options, datasets, executors) instead of the "
        "human-readable tables",
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    scale = run_parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        default=True,
        help="use the fast, small-N preset (default)",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="use the paper-scale parameter grid (slow)",
    )
    run_parser.add_argument(
        "--output", help="also write the rendered table to this text file"
    )
    run_parser.add_argument(
        "--json",
        help="for sweep experiments, also write the raw results to this JSON file",
    )
    run_parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="for sweep experiments, stream the dataset through the "
        "client/accumulator pipeline in record batches of this size",
    )
    run_parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="S",
        help="for sweep experiments, spread streamed batches over this many "
        "mergeable accumulator shards (estimates are shard-invariant)",
    )
    run_parser.add_argument(
        "--executor",
        choices=available_executors(),
        default=None,
        help="for sweep experiments, evaluate accumulator shards on this "
        "execution backend (estimates are identical across backends)",
    )
    run_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="W",
        help="worker count for the thread/process executors",
    )

    encode_parser = subparsers.add_parser(
        "encode",
        help="client side: simulate a population and emit serialized "
        "report frames",
    )
    encode_parser.add_argument(
        "--protocol", required=True, help="protocol name (e.g. InpHT)"
    )
    encode_parser.add_argument(
        "--epsilon", type=float, required=True, help="per-user privacy budget"
    )
    encode_parser.add_argument(
        "--width", type=_positive_int, required=True, metavar="K",
        help="workload width k (every <= k-way marginal becomes answerable)",
    )
    encode_parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra protocol option (repeatable; value parsed as JSON, "
        "e.g. --option width=512)",
    )
    encode_parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="taxi",
        help="population generator simulating the clients (default: taxi)",
    )
    encode_parser.add_argument(
        "-n", "--population", type=_positive_int, default=10_000, metavar="N",
        help="number of simulated users (default: 10000)",
    )
    encode_parser.add_argument(
        "-d", "--dimension", type=_positive_int, default=8, metavar="D",
        help="number of binary attributes (default: 8)",
    )
    encode_parser.add_argument(
        "--seed", type=int, default=20180610, help="master random seed"
    )
    encode_parser.add_argument(
        "--batch-size", type=_positive_int, default=None, metavar="B",
        help="encode the population in record batches of this size "
        "(default: one batch)",
    )
    encode_parser.add_argument(
        "--spec-out", metavar="PATH",
        help="also write the protocol spec (the out-of-band client/server "
        "contract) to this JSON file",
    )
    encode_parser.add_argument(
        "--output", default="-", metavar="PATH",
        help="where to write the report frames ('-' = stdout, the default)",
    )

    aggregate_parser = subparsers.add_parser(
        "aggregate",
        help="server side: feed report frames to an AggregationSession and "
        "print the estimated marginals",
    )
    aggregate_parser.add_argument(
        "--spec", metavar="PATH",
        help="protocol spec JSON written by 'encode --spec-out' "
        "(required unless --restore is given)",
    )
    domain_group = aggregate_parser.add_mutually_exclusive_group()
    domain_group.add_argument(
        "-d", "--dimension", type=_positive_int, metavar="D",
        help="number of binary attributes (names default to attr0..attrD-1)",
    )
    domain_group.add_argument(
        "--attributes", metavar="A,B,C",
        help="comma-separated attribute names of the collection domain",
    )
    aggregate_parser.add_argument(
        "--input", default="-", metavar="PATH",
        help="report-frame stream to consume ('-' = stdin, the default; "
        "'none' = no frames, e.g. to re-print a restored checkpoint)",
    )
    aggregate_parser.add_argument(
        "--restore", metavar="PATH",
        help="resume a checkpointed session instead of starting fresh",
    )
    aggregate_parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="write the session checkpoint here after ingesting the frames",
    )
    aggregate_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the estimates and session metadata to this JSON file",
    )
    aggregate_parser.add_argument(
        "--output", metavar="PATH",
        help="also write the rendered text estimates to this file",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio network collection service (HELLO handshake, "
        "sharded aggregation, checkpoints)",
    )
    _add_contract_arguments(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="listen address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=7311,
        help="listen port; 0 picks a free one (default: 7311)",
    )
    serve_parser.add_argument(
        "--shards", type=_positive_int, default=1, metavar="S",
        help="number of AggregationSession shards connections are spread "
        "over round-robin (estimates are shard-invariant)",
    )
    serve_parser.add_argument(
        "--max-frame-bytes", type=_positive_int, default=None, metavar="N",
        help="per-connection report-frame size cap (backpressure bound)",
    )
    serve_parser.add_argument(
        "--processes", type=_positive_int, default=1, metavar="P",
        help="run P collector processes sharing the port via SO_REUSEPORT; "
        "their checkpoints merge to the same estimates as one process "
        "(default: 1)",
    )
    serve_parser.add_argument(
        "--uvloop", action="store_true",
        help="install the uvloop event-loop policy when available "
        "(falls back to stock asyncio with a warning)",
    )
    serve_parser.add_argument(
        "--kernel-backend", metavar="NAME", default=None,
        help="decode-kernel backend for this collection (numpy, threaded, "
        "numba or auto; default: $REPRO_KERNEL_BACKEND, then auto)",
    )
    serve_parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint every shard to DIR/shard-NN.npz on shutdown "
        "(and periodically with --checkpoint-interval)",
    )
    serve_parser.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SEC",
        help="also checkpoint every SEC seconds while serving",
    )
    serve_parser.add_argument(
        "--stop-after-reports", type=_positive_int, default=None, metavar="N",
        help="shut down (and print the estimates) once N user reports have "
        "been collected; without it, serve until SIGINT/SIGTERM",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve a Prometheus-style scrape endpoint on this port "
        "(0 picks a free one; GET /metrics); single-process serve only",
    )
    serve_parser.add_argument(
        "--stats-interval", type=float, default=None, metavar="SEC",
        help="log a one-line throughput summary every SEC seconds while "
        "serving (single-process serve only)",
    )
    serve_parser.add_argument(
        "--json", metavar="PATH",
        help="write the final estimates plus server stats to this JSON file",
    )
    serve_parser.add_argument(
        "--output", metavar="PATH",
        help="also write the rendered text estimates to this file",
    )

    load_parser = subparsers.add_parser(
        "load",
        help="hammer a running collection server with a fleet of simulated "
        "clients and report the achieved throughput",
    )
    _add_contract_arguments(load_parser)
    load_parser.add_argument(
        "--host", default="127.0.0.1", help="server address (default: 127.0.0.1)"
    )
    load_parser.add_argument(
        "--port", type=int, default=7311, help="server port (default: 7311)"
    )
    load_parser.add_argument(
        "--clients", type=_positive_int, default=8, metavar="C",
        help="number of concurrent simulated clients (default: 8)",
    )
    load_parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default=None,
        help="encode this named dataset with run_streaming's rng discipline "
        "(so the server's estimates match an in-process baseline "
        "bit-for-bit); without it each client synthesizes its own records",
    )
    load_parser.add_argument(
        "-n", "--population", type=_positive_int, default=10_000, metavar="N",
        help="dataset size for --dataset mode (default: 10000)",
    )
    load_parser.add_argument(
        "--records-per-client", type=_positive_int, default=256, metavar="R",
        help="records each client synthesizes without --dataset (default: 256)",
    )
    load_parser.add_argument(
        "--batch-size", type=_positive_int, default=None, metavar="B",
        help="records per report frame (default: one frame per client, or "
        "one frame for the whole --dataset)",
    )
    load_parser.add_argument(
        "--seed", type=int, default=20180610, help="master random seed"
    )
    load_parser.add_argument(
        "--frames-per-connection", type=_positive_int, default=None, metavar="F",
        help="connection churn: reconnect (with a fresh HELLO) after F frames",
    )
    load_parser.add_argument(
        "--malformed", type=int, default=0, metavar="M",
        help="also open M poison connections that send garbage and expect a "
        "per-connection ERR (default: 0)",
    )
    load_parser.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SEC",
        help="keep retrying the first connect for SEC seconds (default: 10)",
    )
    load_parser.add_argument(
        "--json", metavar="PATH",
        help="write the fleet's throughput report to this JSON file",
    )
    load_parser.add_argument(
        "--topology", metavar="DIR", default=None,
        help="drive a whole `repro topo launch` tree: read the collection "
        "contract, collector addresses, routing policy and failover oracle "
        "from DIR/topology.json (waits for the manifest to appear); "
        "contract/--host/--port flags are then taken from the manifest",
    )
    load_parser.add_argument(
        "--token-prefix", metavar="P", default=None,
        help="idempotency-token prefix for --topology mode (default: a "
        "fresh per-run value; reusing a prefix against the same tree "
        "dedupes the groups as replays)",
    )
    load_parser.add_argument(
        "--max-retries", type=int, default=None, metavar="R",
        help="retry each group up to R times with exponential backoff and "
        "full jitter (default: the legacy 3-retry linear schedule)",
    )
    load_parser.add_argument(
        "--retry-base-delay", type=float, default=None, metavar="SEC",
        help="first retry backoff in seconds (default: "
        f"{resilience_defaults.DEFAULT_BASE_DELAY})",
    )
    load_parser.add_argument(
        "--retry-max-delay", type=float, default=None, metavar="SEC",
        help="backoff growth cap in seconds (default: "
        f"{resilience_defaults.DEFAULT_MAX_DELAY})",
    )
    load_parser.add_argument(
        "--retry-deadline", type=float, default=None, metavar="SEC",
        help="give up retrying a group SEC seconds after its first attempt "
        "(default: attempt-bounded only)",
    )
    load_parser.add_argument(
        "--breaker", action="store_true",
        help="run a per-collector circuit breaker: after repeated failures "
        "a target is failed fast until a half-open probe succeeds",
    )
    load_parser.add_argument(
        "--spool-dir", metavar="DIR", default=None,
        help="durable client spool: append every group to DIR before "
        "sending and commit it on ACK, so a crashed client rerun with the "
        "same --spool-dir and --token-prefix resumes without double-"
        "folding (requires --token-prefix)",
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help="poll running collectors' STATS frames and render live "
        "throughput, per-shard report counts, breaker states, and the "
        "theory-derived expected-error half-width",
    )
    watch_parser.add_argument(
        "targets", nargs="*", metavar="HOST:PORT",
        help="collector addresses to watch (e.g. 127.0.0.1:7311)",
    )
    watch_parser.add_argument(
        "--topology", metavar="DIR", default=None,
        help="watch every collector of a `repro topo launch` tree "
        "(addresses read from DIR/topology.json)",
    )
    watch_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SEC",
        help="seconds between samples (default: 2)",
    )
    watch_parser.add_argument(
        "--once", action="store_true",
        help="print a single sample and exit instead of polling",
    )
    watch_parser.add_argument(
        "--json", action="store_true",
        help="emit each sample as raw JSON (stats + metrics snapshot) "
        "instead of the rendered view",
    )
    watch_parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="SEC",
        help="per-probe STATS timeout (default: 5)",
    )

    topo_parser = subparsers.add_parser(
        "topo",
        help="launch/inspect/finalize a local multi-collector fan-in "
        "topology (N durable collectors + supervisor + failover oracle)",
    )
    topo_subparsers = topo_parser.add_subparsers(
        dest="topo_command", required=True
    )

    topo_launch = topo_subparsers.add_parser(
        "launch",
        help="spawn N durable collector processes plus the supervisor "
        "oracle, write DIR/topology.json, serve until stopped, then "
        "fan in and print the merged estimates",
    )
    _add_contract_arguments(topo_launch)
    topo_launch.add_argument(
        "--dir", required=True, metavar="DIR",
        help="topology directory: per-collector durable checkpoints and "
        "the topology.json manifest live here",
    )
    topo_launch.add_argument(
        "--collectors", type=_positive_int, default=3, metavar="N",
        help="number of front-line collector processes (default: 3)",
    )
    topo_launch.add_argument(
        "--shards", type=_positive_int, default=1, metavar="S",
        help="AggregationSession shards inside each collector (default: 1)",
    )
    topo_launch.add_argument(
        "--routing", choices=list(ROUTING_POLICIES), default="round-robin",
        help="routing policy clients should use (recorded in the manifest)",
    )
    topo_launch.add_argument(
        "--host", default="127.0.0.1",
        help="listen address for every collector (default: 127.0.0.1)",
    )
    topo_launch.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SEC",
        help="also refresh each collector's durable state.npz every SEC "
        "seconds (on top of the per-ACK transactional writes)",
    )
    topo_launch.add_argument(
        "--stop-after-reports", type=_positive_int, default=None, metavar="N",
        help="finalize the tree (and print the estimates) once N reports "
        "are durably acknowledged across collectors; without it, serve "
        "until SIGINT/SIGTERM",
    )
    topo_launch.add_argument(
        "--kill-after-reports", type=_positive_int, default=None, metavar="K",
        help="fault injection: SIGKILL one collector once K reports are "
        "durably acknowledged (its checkpoint is recovered and re-merged)",
    )
    topo_launch.add_argument(
        "--kill-collector", type=int, default=0, metavar="I",
        help="which collector --kill-after-reports kills (default: 0)",
    )
    topo_launch.add_argument(
        "--publish-resilience", action="store_true",
        help="record the default retry/timeout/circuit-breaker policies in "
        "the manifest so `repro load --topology` clients adopt them "
        "without extra flags",
    )
    topo_launch.add_argument(
        "--json", metavar="PATH",
        help="write the final estimates plus topology stats to this file",
    )
    topo_launch.add_argument(
        "--output", metavar="PATH",
        help="also write the rendered text estimates to this file",
    )

    topo_inspect = topo_subparsers.add_parser(
        "inspect",
        help="print a live tree's per-collector stats and the supervisor's "
        "recovered-state verdicts as JSON",
    )
    topo_inspect.add_argument(
        "--dir", required=True, metavar="DIR", help="topology directory"
    )

    topo_finalize = topo_subparsers.add_parser(
        "finalize",
        help="fan in a tree non-destructively: pull every live collector's "
        "state over the wire, recover dead ones from their durable "
        "checkpoints, merge, and print the estimates",
    )
    topo_finalize.add_argument(
        "--dir", required=True, metavar="DIR", help="topology directory"
    )
    topo_finalize.add_argument(
        "--json", metavar="PATH",
        help="write the merged estimates to this JSON file",
    )
    topo_finalize.add_argument(
        "--allow-partial", action="store_true",
        help="degraded mode: finalize even when collectors (and their "
        "reports) are known lost, attaching the coverage ledger and the "
        "inflated error bound instead of refusing",
    )
    topo_finalize.add_argument(
        "--expected-reports", metavar="PATH", default=None,
        help="a `repro load --json` report whose per-target ACK counts "
        "define how many reports each collector must hold; shortfalls "
        "make the strict mode fail (or show up as exact per-collector "
        "losses under --allow-partial)",
    )

    hh_parser = subparsers.add_parser(
        "hh",
        help="heavy-hitter discovery: partition users across prefix-tree "
        "levels, run a frequency oracle per level, and walk the tree "
        "for the top-k",
    )
    hh_subparsers = hh_parser.add_subparsers(dest="hh_command", required=True)

    def _add_hh_protocol_arguments(
        parser: argparse.ArgumentParser, require_epsilon: bool
    ) -> None:
        parser.add_argument(
            "--epsilon", type=float, required=require_epsilon,
            help="per-user privacy budget (one report per user, so the "
            "whole discovery is epsilon-LDP with no composition)",
        )
        parser.add_argument(
            "--width", type=_positive_int, default=2, metavar="K",
            help="marginal workload width k for itemset queries on the "
            "final estimator (default: 2)",
        )
        parser.add_argument(
            "--oracle", choices=("InpOLH", "InpHT", "InpHTCMS"),
            default="InpOLH",
            help="per-level frequency oracle (default: InpOLH)",
        )
        parser.add_argument(
            "--fanout", type=_positive_int, default=2, metavar="F",
            help="prefix bits each level adds (default: 2)",
        )
        parser.add_argument(
            "--threshold", type=float, default=0.0, metavar="T",
            help="fixed pruning threshold; 0 = adaptive, each level prunes "
            "at its oracle's confidence half-width (default: 0)",
        )
        parser.add_argument(
            "--top-k", type=_positive_int, default=8, metavar="K",
            dest="top_k", help="heavy hitters to emit (default: 8)",
        )
        parser.add_argument(
            "--option", action="append", default=[], metavar="KEY=VALUE",
            help="extra HH protocol option, e.g. --option width=512 for "
            "the InpHTCMS sketch (repeatable; value parsed as JSON; "
            "overrides the dedicated flags above)",
        )

    def _add_hh_dataset_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--dataset", choices=DATASET_NAMES, default="skewed",
            help="population generator simulating the clients "
            "(default: skewed — a zipf-style heavy-tailed population)",
        )
        parser.add_argument(
            "-n", "--population", type=_positive_int, default=20_000,
            metavar="N", help="number of simulated users (default: 20000)",
        )
        parser.add_argument(
            "--seed", type=int, default=20180610, help="master random seed"
        )
        parser.add_argument(
            "--batch-size", type=_positive_int, default=None, metavar="B",
            help="encode the population in record batches of this size "
            "(default: one batch)",
        )

    hh_encode = hh_subparsers.add_parser(
        "encode",
        help="client side: partition a simulated population across prefix "
        "levels and emit serialized HH report frames",
    )
    _add_hh_protocol_arguments(hh_encode, require_epsilon=True)
    _add_hh_dataset_arguments(hh_encode)
    hh_encode.add_argument(
        "-d", "--dimension", type=_positive_int, default=8, metavar="D",
        help="number of binary attributes (default: 8)",
    )
    hh_encode.add_argument(
        "--spec-out", metavar="PATH",
        help="also write the protocol spec (the out-of-band client/server "
        "contract) to this JSON file",
    )
    hh_encode.add_argument(
        "--output", default="-", metavar="PATH",
        help="where to write the report frames ('-' = stdout, the default)",
    )

    hh_aggregate = hh_subparsers.add_parser(
        "aggregate",
        help="server side: feed HH report frames to an AggregationSession "
        "and print the discovered top-k",
    )
    hh_aggregate.add_argument(
        "--spec", metavar="PATH",
        help="protocol spec JSON written by 'hh encode --spec-out' "
        "(required unless --restore is given)",
    )
    hh_domain_group = hh_aggregate.add_mutually_exclusive_group()
    hh_domain_group.add_argument(
        "-d", "--dimension", type=_positive_int, metavar="D",
        help="number of binary attributes (names default to attr0..attrD-1)",
    )
    hh_domain_group.add_argument(
        "--attributes", metavar="A,B,C",
        help="comma-separated attribute names of the collection domain",
    )
    hh_aggregate.add_argument(
        "--input", default="-", metavar="PATH",
        help="report-frame stream to consume ('-' = stdin, the default; "
        "'none' = no frames, e.g. to re-discover from a checkpoint)",
    )
    hh_aggregate.add_argument(
        "--restore", metavar="PATH",
        help="resume a checkpointed session instead of starting fresh",
    )
    hh_aggregate.add_argument(
        "--checkpoint", metavar="PATH",
        help="write the session checkpoint here after ingesting the frames",
    )
    hh_aggregate.add_argument(
        "--top-k", type=_positive_int, default=None, metavar="K",
        dest="top_k", help="override the spec's top-k at discovery time",
    )
    hh_aggregate.add_argument(
        "--confidence", type=float, default=0.95, metavar="C",
        help="two-sided confidence level for the frequency intervals "
        "(default: 0.95)",
    )
    hh_aggregate.add_argument(
        "--json", metavar="PATH",
        help="also write the discovery result and session metadata to "
        "this JSON file",
    )
    hh_aggregate.add_argument(
        "--output", metavar="PATH",
        help="also write the rendered text result to this file",
    )

    hh_discover = hh_subparsers.add_parser(
        "discover",
        help="end to end: simulate the population, collect the reports "
        "(in-process, or through a `repro topo launch` tree), and score "
        "the discovered top-k against the exact one",
    )
    _add_hh_protocol_arguments(hh_discover, require_epsilon=False)
    _add_hh_dataset_arguments(hh_discover)
    hh_discover.add_argument(
        "-d", "--dimension", type=_positive_int, default=8, metavar="D",
        help="number of binary attributes (default: 8; --topology mode "
        "takes the domain from the manifest instead)",
    )
    hh_discover.add_argument(
        "--confidence", type=float, default=0.95, metavar="C",
        help="two-sided confidence level for the frequency intervals "
        "(default: 0.95)",
    )
    hh_discover.add_argument(
        "--topology", metavar="DIR", default=None,
        help="collect through a running `repro topo launch` tree instead "
        "of in-process: the contract comes from DIR/topology.json, the "
        "encoded frames are driven at the collectors by a client fleet, "
        "and the per-collector states are fanned in before discovery",
    )
    hh_discover.add_argument(
        "--clients", type=_positive_int, default=3, metavar="C",
        help="concurrent clients for --topology mode (default: 3)",
    )
    hh_discover.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SEC",
        help="keep retrying the first connect for SEC seconds (default: 10)",
    )
    hh_discover.add_argument(
        "--token-prefix", metavar="P", default=None,
        help="idempotency-token prefix for --topology mode (default: a "
        "fresh per-run value)",
    )
    hh_discover.add_argument(
        "--json", metavar="PATH",
        help="write the discovery result, the exact top-k and the "
        "precision/recall score to this JSON file",
    )
    hh_discover.add_argument(
        "--output", metavar="PATH",
        help="also write the rendered text result to this file",
    )
    return parser


def _add_contract_arguments(parser: argparse.ArgumentParser) -> None:
    """The collection contract: a spec (file or inline) plus the domain."""
    parser.add_argument(
        "--spec", metavar="PATH",
        help="protocol spec JSON (e.g. from 'encode --spec-out'); "
        "alternatively give --protocol/--epsilon/--width inline",
    )
    parser.add_argument("--protocol", help="protocol name (e.g. InpRR)")
    parser.add_argument(
        "--epsilon", type=float, help="per-user privacy budget"
    )
    parser.add_argument(
        "--width", type=_positive_int, metavar="K", help="workload width k"
    )
    parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra protocol option (repeatable; value parsed as JSON)",
    )
    domain_group = parser.add_mutually_exclusive_group()
    domain_group.add_argument(
        "-d", "--dimension", type=_positive_int, metavar="D",
        help="number of binary attributes (names default to attr0..attrD-1)",
    )
    domain_group.add_argument(
        "--attributes", metavar="A,B,C",
        help="comma-separated attribute names of the collection domain",
    )


def _contract_from_args(arguments: argparse.Namespace):
    """Resolve the (spec, domain) collection contract of serve/load."""
    if arguments.spec and arguments.protocol:
        raise ReproError("pass either --spec or --protocol, not both")
    if arguments.spec:
        spec = load_protocol_spec(arguments.spec)
    elif arguments.protocol:
        if arguments.epsilon is None or arguments.width is None:
            raise ReproError("--protocol requires --epsilon and --width")
        spec = ProtocolSpec(
            protocol=arguments.protocol,
            epsilon=arguments.epsilon,
            max_width=arguments.width,
            options=_parse_options(arguments.option),
        )
    else:
        raise ReproError(
            "describe the collection contract with --spec PATH or "
            "--protocol/--epsilon/--width"
        )
    spec.build()  # surface unknown protocols/options before any socket work
    if arguments.attributes:
        domain = Domain(
            [name.strip() for name in arguments.attributes.split(",")]
        )
    elif arguments.dimension:
        domain = Domain.binary(arguments.dimension)
    else:
        raise ReproError(
            "pass --dimension or --attributes to describe the collection domain"
        )
    return spec, domain


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _protocol_listing() -> Dict[str, Dict]:
    """Machine-readable description of every registered protocol."""
    from .protocols.registry import (
        CORE_PROTOCOL_NAMES,
        DISCOVERY_PROTOCOL_NAMES,
        PROTOCOL_CLASSES,
    )

    listing: Dict[str, Dict] = {}
    for name in available_protocols():
        protocol_class = PROTOCOL_CLASSES[name]
        instance = make_protocol(name, 1.0, 1)
        if name in CORE_PROTOCOL_NAMES:
            role = "core"
        elif name in DISCOVERY_PROTOCOL_NAMES:
            role = "discovery"
        else:
            role = "baseline"
        listing[name] = {
            "core": name in CORE_PROTOCOL_NAMES,
            "role": role,
            "options": sorted(
                ProtocolSpec.accepted_options(protocol_class)
            ),
            "default_options": instance.spec_options(),
            "tuning_options": sorted(instance.tuning_options()),
        }
    return listing


def _run_list(arguments: argparse.Namespace) -> int:
    protocols = _protocol_listing()
    if arguments.json:
        payload = {
            "experiments": {
                name: EXPERIMENTS[name][1] for name in sorted(EXPERIMENTS)
            },
            "protocols": protocols,
            "datasets": list(DATASET_NAMES),
            "executors": list(available_executors()),
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        _, description = EXPERIMENTS[name]
        print(f"{name.ljust(width)}  {description}")
    print()
    print("protocols:")
    width = max(len(name) for name in protocols)
    for name, info in protocols.items():
        options = ", ".join(info["options"]) if info["options"] else "-"
        print(f"  {name.ljust(width)}  {info['role']:9}  options: {options}")
    return 0


def _run_experiment(arguments: argparse.Namespace) -> int:
    module, _ = EXPERIMENTS[arguments.experiment]
    config = module.default_config(quick=not arguments.full)
    streaming_overrides = {}
    if arguments.batch_size is not None:
        streaming_overrides["batch_size"] = arguments.batch_size
    if arguments.shards is not None:
        streaming_overrides["shards"] = arguments.shards
    if arguments.executor is not None:
        streaming_overrides["executor"] = arguments.executor
    if arguments.workers is not None:
        streaming_overrides["workers"] = arguments.workers
    if (
        arguments.shards is not None
        and arguments.shards > 1
        and arguments.batch_size is None
    ):
        print(
            "--shards > 1 requires --batch-size: without batching the whole "
            "dataset is a single report batch and only one shard would be used",
            file=sys.stderr,
        )
        return 2
    if (
        arguments.workers is not None
        and arguments.workers > 1
        and (arguments.executor or "serial") == "serial"
    ):
        print(
            "--workers > 1 has no effect with the serial executor; add "
            "--executor thread or --executor process",
            file=sys.stderr,
        )
        return 2
    if (
        arguments.workers is not None
        and arguments.workers > 1
        and (arguments.shards or 1) < 2
    ):
        print(
            "--workers > 1 requires --shards > 1: parallelism is per-shard, "
            "so extra workers would idle on a single shard",
            file=sys.stderr,
        )
        return 2
    if streaming_overrides:
        if not isinstance(config, SweepConfig):
            print(
                f"--batch-size/--shards/--executor/--workers only apply to "
                f"sweep experiments; {arguments.experiment} is not one",
                file=sys.stderr,
            )
            return 2
        config = dataclasses.replace(config, **streaming_overrides)
    result = module.run(config)
    rendered = module.render(result)
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"\nwrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        if isinstance(result, SweepResult):
            save_sweep_json(result, arguments.json)
            print(f"wrote {arguments.json}", file=sys.stderr)
        else:
            print(
                f"--json is only supported for sweep experiments; "
                f"{arguments.experiment} is not one",
                file=sys.stderr,
            )
            return 2
    return 0


def _parse_options(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--option key=value`` flags (values read as JSON)."""
    options: Dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ReproError(
                f"--option expects KEY=VALUE, got {pair!r}"
            )
        try:
            options[key] = json.loads(raw)
        except json.JSONDecodeError:
            if raw in ("True", "False", "None"):
                # Python spellings of JSON literals; the string fallback
                # would silently invert booleans (bool('False') is True).
                options[key] = {"True": True, "False": False, "None": None}[raw]
            else:
                options[key] = raw
    return options


def _run_encode(arguments: argparse.Namespace) -> int:
    try:
        spec = ProtocolSpec(
            protocol=arguments.protocol,
            epsilon=arguments.epsilon,
            max_width=arguments.width,
            options=_parse_options(arguments.option),
        )
        protocol = spec.build()
        if arguments.width > arguments.dimension:
            print(
                f"encode: --width {arguments.width} exceeds the "
                f"{arguments.dimension}-attribute domain (-d)",
                file=sys.stderr,
            )
            return 2
        if arguments.spec_out:
            save_protocol_spec(spec, arguments.spec_out)
            print(f"wrote {arguments.spec_out}", file=sys.stderr)

        generator = np.random.default_rng(arguments.seed)
        dataset = make_dataset(
            arguments.dataset,
            arguments.population,
            arguments.dimension,
            generator,
        )
        # Mirror run_streaming's rng discipline (one child generator per
        # batch, the master itself for a single batch) so, for the same seed
        # and batch size, the shell round trip reproduces the in-process
        # pipeline exactly.
        num_batches = dataset.num_batches(arguments.batch_size)
        if num_batches == 1:
            batch_rngs = [generator]
        else:
            batch_rngs = spawn_rngs(generator, num_batches)

        total_bytes = 0
        sink = (
            sys.stdout.buffer
            if arguments.output == "-"
            else open(arguments.output, "wb")
        )
        try:
            for chunk, chunk_rng in zip(
                dataset.iter_batches(arguments.batch_size), batch_rngs
            ):
                frame = protocol.encode_batch(chunk, rng=chunk_rng).to_bytes()
                sink.write(frame)
                total_bytes += len(frame)
            sink.flush()
        finally:
            if sink is not sys.stdout.buffer:
                sink.close()
    except BrokenPipeError:
        raise  # handled quietly in main(); not an encode failure
    except (ReproError, OSError, ValueError) as error:
        # OSError: unwritable --output/--spec-out paths; ValueError: option
        # values the protocol constructor rejects (e.g. width="abc").
        print(f"encode: {error}", file=sys.stderr)
        return 2
    bits_per_user = 8.0 * total_bytes / dataset.size
    print(
        f"encoded {dataset.size} users into {num_batches} frame(s), "
        f"{total_bytes} bytes ({bits_per_user:.1f} wire bits/user; "
        f"Table 2: {protocol.communication_bits(dataset.dimension)} bits/user)",
        file=sys.stderr,
    )
    return 0


def _render_estimates(estimator, session: AggregationSession) -> str:
    """Human-readable estimates (``estimator=None`` for an empty session)."""
    lines = [
        f"protocol  : {session.spec.describe()}",
        f"reports   : {session.num_reports}",
    ]
    metadata = session.metadata
    if metadata["wire_bytes_per_report"] is not None:
        lines.append(
            f"wire      : {metadata['wire_bytes_total']} bytes in "
            f"{metadata['wire_batches']} frame(s), "
            f"{8.0 * metadata['wire_bytes_per_report']:.1f} bits/user"
        )
    if estimator is None:
        return "\n".join(lines)
    lines.append("")
    for beta, table in sorted(estimator.query_all().items()):
        names = ",".join(estimator.domain.names_of(beta))
        values = " ".join(f"{value:.4f}" for value in table.values)
        lines.append(f"{names}: {values}")
    return "\n".join(lines)


def _estimates_payload(estimator, session: AggregationSession) -> Dict:
    """JSON estimates payload; one shape whether or not reports arrived
    (``estimator=None`` simply yields empty ``marginals``)."""
    return {
        "spec": session.spec.to_dict(),
        "num_reports": session.num_reports,
        "session": session.metadata,
        "attributes": list(session.domain.attributes),
        "marginals": [
            {
                "attributes": estimator.domain.names_of(beta),
                "values": [float(value) for value in table.values],
            }
            for beta, table in sorted(estimator.query_all().items())
        ]
        if estimator is not None
        else [],
    }


def _run_aggregate(arguments: argparse.Namespace) -> int:
    try:
        if arguments.restore and (
            arguments.spec or arguments.dimension or arguments.attributes
        ):
            print(
                "aggregate: --restore carries the session's own spec and "
                "domain; --spec/--dimension/--attributes cannot be combined "
                "with it",
                file=sys.stderr,
            )
            return 2
        domain = None
        if not arguments.restore:
            if not arguments.spec:
                print(
                    "aggregate: --spec is required unless --restore is given",
                    file=sys.stderr,
                )
                return 2
            if arguments.attributes:
                domain = Domain(
                    [name.strip() for name in arguments.attributes.split(",")]
                )
            elif arguments.dimension:
                domain = Domain.binary(arguments.dimension)
            else:
                print(
                    "aggregate: pass --dimension or --attributes to describe "
                    "the collection domain (or --restore a checkpoint)",
                    file=sys.stderr,
                )
                return 2
        # Restoring at an interactive terminal with nothing piped in, or an
        # explicit --input none, means there are no frames to ingest — the
        # command just (re-)prints the session's estimates.
        no_input = arguments.input == "none" or (
            arguments.restore
            and arguments.input == "-"
            and sys.stdin.isatty()
        )
        # Read ONE frame from stdin before loading the spec file: in an
        # ``encode | aggregate`` pipeline both processes start together, but
        # the producer writes --spec-out before emitting its first frame
        # byte, so having a frame (or EOF) in hand guarantees the spec file
        # exists.  The rest of the stream is ingested one frame at a time —
        # constant memory for arbitrarily large collections, matching the
        # --input FILE path.
        stdin_frames = None
        first_frame = None
        if not no_input and arguments.input == "-":
            stdin_frames = split_report_frames(sys.stdin.buffer)
            first_frame = next(stdin_frames, None)
        if arguments.restore:
            session = AggregationSession.restore(arguments.restore)
            print(
                f"restored session with {session.num_reports} reports from "
                f"{arguments.restore}",
                file=sys.stderr,
            )
        else:
            session = AggregationSession(
                load_protocol_spec(arguments.spec), domain
            )
        if stdin_frames is not None:
            if first_frame is not None:
                session.submit(first_frame)
                for frame in stdin_frames:
                    session.submit(frame)
        elif not no_input:
            with open(arguments.input, "rb") as source:
                for frame in split_report_frames(source):
                    session.submit(frame)
        if arguments.checkpoint:
            session.checkpoint(arguments.checkpoint)
            print(f"wrote {arguments.checkpoint}", file=sys.stderr)
        estimator = session.snapshot()
    except BrokenPipeError:
        raise  # handled quietly in main(); not an aggregate failure
    except (ReproError, OSError, ValueError) as error:
        # OSError: missing/unreadable --input or checkpoint paths.
        print(f"aggregate: {error}", file=sys.stderr)
        return 2
    rendered = _render_estimates(estimator, session)
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(_estimates_payload(estimator, session), handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


async def _serve_stats_ticker(
    server: CollectionServer, interval: float
) -> None:
    """Log a one-line throughput summary every ``interval`` seconds."""
    logger = get_logger("serve")
    last_reports = 0
    last_bytes = 0
    while True:
        await asyncio.sleep(interval)
        stats = server.stats()
        reports = int(stats["reports"])
        num_bytes = int(stats["bytes"])
        logger.info(
            "throughput: %d reports (+%.1f/s), %.2f MB (+%.2f MB/s), "
            "%d active connection(s)",
            reports,
            (reports - last_reports) / interval,
            num_bytes / 1e6,
            (num_bytes - last_bytes) / (1e6 * interval),
            stats["connections"]["active"],
        )
        last_reports, last_bytes = reports, num_bytes


async def _serve_main(
    server: CollectionServer, stats_interval: Optional[float] = None
) -> None:
    """Start the server, announce readiness, serve until a stop signal."""
    loop = asyncio.get_running_loop()
    logger = get_logger("serve")
    registered = []
    # Handlers first, readiness line second: a supervisor that signals the
    # moment it sees the line must always get the graceful shutdown.
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.request_stop)
            registered.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-unix loops / nested loops: Ctrl-C still interrupts
    ticker = None
    try:
        await server.start()
        logger.info(
            "serving %s over %d attribute(s) on %s:%d (%d shard(s))",
            server.spec.describe(),
            server.domain.dimension,
            server.host,
            server.port,
            server.num_shards,
        )
        if stats_interval is not None:
            ticker = asyncio.create_task(
                _serve_stats_ticker(server, stats_interval)
            )
        await server.serve_until_stopped()
    finally:
        if ticker is not None:
            ticker.cancel()
            try:
                await ticker
            except asyncio.CancelledError:
                pass
        for signum in registered:
            loop.remove_signal_handler(signum)


def _serve_multiprocess(arguments: argparse.Namespace, spec, domain):
    """``serve --processes P``: SO_REUSEPORT workers merged via checkpoints.

    Returns ``(combined_session, stats_payload)``.  Without an explicit
    ``--checkpoint-dir`` the worker checkpoints (the merge channel) live in
    a temporary directory deleted after the merge.
    """
    checkpoint_dir = arguments.checkpoint_dir
    scratch = None
    if checkpoint_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-serve-")
        checkpoint_dir = scratch.name
    try:
        extra = {}
        if arguments.max_frame_bytes is not None:
            extra["max_frame_bytes"] = arguments.max_frame_bytes
        collector = MultiProcessCollector(
            spec,
            domain,
            processes=arguments.processes,
            checkpoint_dir=checkpoint_dir,
            host=arguments.host,
            port=arguments.port,
            shards=arguments.shards,
            stop_after_reports=arguments.stop_after_reports,
            use_uvloop=arguments.uvloop,
            **extra,
        )
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_: collector.stop()
                )
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        try:
            collector.start()
            get_logger("serve").info(
                "serving %s over %d attribute(s) on %s:%d "
                "(%d process(es), %d shard(s) each)",
                spec.describe(),
                domain.dimension,
                arguments.host,
                collector.port,
                arguments.processes,
                arguments.shards,
            )
            combined = collector.join()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    finally:
        if scratch is not None:
            scratch.cleanup()
    metadata = combined.metadata
    get_logger("serve").info(
        "collected %d reports in %d frame(s) across %d worker process(es)",
        combined.num_reports,
        metadata["wire_batches"],
        arguments.processes,
    )
    stats = {
        "address": {"host": arguments.host, "port": collector.port},
        "spec": spec.to_dict(),
        "processes": arguments.processes,
        "reports": combined.num_reports,
        "frames": metadata["wire_batches"],
        "bytes": metadata["wire_bytes_total"],
    }
    if collector.metrics_snapshot is not None:
        stats["metrics"] = collector.metrics_snapshot.state_dict()
    return combined, stats


def _run_serve(arguments: argparse.Namespace) -> int:
    try:
        spec, domain = _contract_from_args(arguments)
        if arguments.checkpoint_interval is not None and not arguments.checkpoint_dir:
            print(
                "serve: --checkpoint-interval requires --checkpoint-dir",
                file=sys.stderr,
            )
            return 2
        if arguments.kernel_backend:
            # Validate and pin the decode backend; the env var carries the
            # choice into --processes workers regardless of start method.
            set_default_backend(arguments.kernel_backend)
            os.environ[BACKEND_ENV_VAR] = arguments.kernel_backend
        if arguments.processes > 1:
            if arguments.checkpoint_interval is not None:
                print(
                    "serve: --checkpoint-interval is not supported with "
                    "--processes > 1 (workers checkpoint on shutdown)",
                    file=sys.stderr,
                )
                return 2
            if arguments.metrics_port is not None or (
                arguments.stats_interval is not None
            ):
                print(
                    "serve: --metrics-port/--stats-interval need the "
                    "single-process server (workers cannot share one "
                    "scrape socket); drop --processes or the metrics flags",
                    file=sys.stderr,
                )
                return 2
            combined, stats = _serve_multiprocess(arguments, spec, domain)
        else:
            if arguments.uvloop:
                install_uvloop()
            extra = {}
            if arguments.max_frame_bytes is not None:
                extra["max_frame_bytes"] = arguments.max_frame_bytes
            if arguments.metrics_port is not None:
                extra["metrics_port"] = arguments.metrics_port
            server = CollectionServer(
                spec,
                domain,
                host=arguments.host,
                port=arguments.port,
                shards=arguments.shards,
                checkpoint_dir=arguments.checkpoint_dir,
                checkpoint_interval=arguments.checkpoint_interval,
                stop_after_reports=arguments.stop_after_reports,
                **extra,
            )
            asyncio.run(_serve_main(server, arguments.stats_interval))
            stats = server.stats()
            get_logger("serve").info(
                "collected %d reports in %d frame(s) over %d connection(s) "
                "(%d rejected)",
                stats["reports"],
                stats["frames"],
                stats["connections"]["total"],
                stats["connections"]["rejected"],
            )
            combined = server.combined_session()
        if combined.num_reports == 0:
            print(
                "serve: collected no reports; nothing to estimate",
                file=sys.stderr,
            )
            estimator = None
        else:
            estimator = combined.snapshot()
        rendered = _render_estimates(estimator, combined)
        payload = _estimates_payload(estimator, combined)
    except (ReproError, OSError, ValueError) as error:
        # OSError: the port is taken or the checkpoint dir is unwritable.
        print(f"serve: {error}", file=sys.stderr)
        return 2
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        payload["server"] = stats
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


def _load_topology_contract(arguments: argparse.Namespace):
    """Resolve (spec, domain, fleet kwargs) from a topology manifest."""
    import time as _time

    from .topology import wait_for_manifest
    from .topology.pull import pull_control

    manifest = wait_for_manifest(
        arguments.topology, timeout=arguments.connect_timeout
    )
    spec = ProtocolSpec.from_dict(manifest["spec"])
    domain = Domain(manifest["attributes"])
    targets = [
        (collector["host"], int(collector["port"]))
        for collector in manifest["collectors"]
    ]
    oracle = manifest.get("supervisor") or {}
    failover = None
    if oracle.get("port"):
        host, port = str(oracle["host"]), int(oracle["port"])

        async def failover(address):
            answer = await pull_control(host, port, {"what": "recovered"})
            payload = answer.payload
            return {
                "dead": f"{address[0]}:{address[1]}"
                in (payload.get("dead") or []),
                "acked_tokens": payload.get("acked_tokens") or {},
            }

    token_prefix = arguments.token_prefix
    if token_prefix is None:
        # Fresh per run: tokens are idempotency keys inside the collectors'
        # durable state, so replaying a previous run's prefix against the
        # same tree would dedupe every group away.
        token_prefix = f"load-{os.getpid()}-{_time.time_ns():x}"
    kwargs = {
        "targets": targets,
        "routing": manifest["routing"],
        "token_prefix": token_prefix,
        "failover": failover,
    }
    if manifest.get("resilience"):
        from .resilience import ResilienceConfig

        kwargs["resilience"] = ResilienceConfig.from_dict(
            manifest["resilience"]
        )
    return spec, domain, kwargs


def _retry_policy_from_args(arguments: argparse.Namespace):
    """Build the fleet's RetryPolicy from ``repro load`` flags.

    Returns None when no retry flag was given, which keeps
    :class:`~repro.server.LoadGenerator`'s legacy linear schedule (or the
    manifest's published policy in --topology mode).
    """
    if (
        arguments.max_retries is None
        and arguments.retry_base_delay is None
        and arguments.retry_max_delay is None
        and arguments.retry_deadline is None
    ):
        return None
    from .resilience import RetryPolicy

    base = (
        arguments.retry_base_delay
        if arguments.retry_base_delay is not None
        else resilience_defaults.DEFAULT_BASE_DELAY
    )
    cap = (
        arguments.retry_max_delay
        if arguments.retry_max_delay is not None
        else max(resilience_defaults.DEFAULT_MAX_DELAY, base)
    )
    return RetryPolicy(
        max_retries=(
            arguments.max_retries
            if arguments.max_retries is not None
            else resilience_defaults.DEFAULT_MAX_RETRIES
        ),
        base_delay=base,
        max_delay=cap,
        growth=resilience_defaults.DEFAULT_GROWTH,
        jitter=resilience_defaults.DEFAULT_JITTER,
        deadline=arguments.retry_deadline,
    )


def _run_load(arguments: argparse.Namespace) -> int:
    try:
        if arguments.topology:
            spec, domain, topology_kwargs = _load_topology_contract(arguments)
        else:
            spec, domain = _contract_from_args(arguments)
            topology_kwargs = {
                "host": arguments.host,
                "port": arguments.port,
            }
            if arguments.token_prefix:
                topology_kwargs["token_prefix"] = arguments.token_prefix
        frames = None
        if arguments.dataset:
            # Build the dataset and encode with run_streaming's exact rng
            # discipline (same generator object for both), so the server's
            # finalized estimates can be compared bit-for-bit against an
            # in-process run_streaming(dataset, rng, batch_size) baseline.
            generator = np.random.default_rng(arguments.seed)
            dataset = make_dataset(
                arguments.dataset,
                arguments.population,
                domain.dimension,
                generator,
            )
            frames = LoadGenerator.frames_for_dataset(
                spec, dataset, arguments.batch_size, rng=generator
            )
        policy_kwargs: Dict = {}
        retry = _retry_policy_from_args(arguments)
        if retry is not None:
            policy_kwargs["retry"] = retry
        if arguments.breaker:
            policy_kwargs["breaker"] = (
                resilience_defaults.default_breaker_policy()
            )
        if arguments.spool_dir:
            policy_kwargs["spool_dir"] = arguments.spool_dir
        fleet = LoadGenerator(
            spec,
            domain,
            frames=frames,
            **topology_kwargs,
            **policy_kwargs,
            num_clients=arguments.clients,
            records_per_client=arguments.records_per_client,
            batch_size=arguments.batch_size,
            seed=arguments.seed,
            frames_per_connection=arguments.frames_per_connection,
            malformed_connections=arguments.malformed,
            connect_timeout=arguments.connect_timeout,
        )
        report = asyncio.run(fleet.run())
    except (ReproError, OSError, ValueError) as error:
        print(f"load: {error}", file=sys.stderr)
        return 2
    print(
        "\n".join(
            [
                f"clients     : {report.clients}",
                f"connections : {report.connections} "
                f"({report.rejected_connections} rejected as expected)",
                f"frames      : {report.frames} sent, "
                f"{report.acked_frames} acked",
                f"reports     : {report.acked_reports} acked",
                f"failover    : {report.retries} retried group(s), "
                f"{report.recovered_groups} recovered from dead collectors, "
                f"{report.spool_replays} replayed from the spool",
                f"bytes       : {report.bytes}",
                f"duration    : {report.duration_seconds:.3f} s",
                f"throughput  : {report.reports_per_second:,.0f} reports/s, "
                f"{report.megabytes_per_second:.2f} MB/s",
            ]
        )
    )
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


async def _topo_durable_reports(supervisor) -> int:
    """Durably acknowledged reports across the whole tree, counted once.

    Live collectors report ``sum(shard_reports)`` — shard sessions only
    grow when a group is folded (ACK'd) in durable mode — and dead ones
    contribute their recovered checkpoint.  Restarted collectors resume
    from the same checkpoint the supervisor drops on restart, so nothing
    is counted twice.
    """
    from .topology.pull import pull_stats

    total = sum(
        state.num_reports for state in supervisor.recovered_states().values()
    )
    for handle in supervisor.handles:
        if handle.status != "live":
            continue
        try:
            stats = await pull_stats(handle.host, handle.port, timeout=5.0)
        except ReproError:
            continue  # death between health checks; next tick recovers it
        total += sum(stats.get("shard_reports", []))
    return total


async def _topo_launch_main(arguments, topology) -> Dict:
    """Serve the tree until stopped/complete; returns the final stats."""
    supervisor = topology.supervisor
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-unix loops / nested loops: Ctrl-C still interrupts
    killed = None
    try:
        await topology.start()
        ports = ", ".join(str(port) for _, port in supervisor.addresses)
        get_logger("topo").info(
            "topology: %d collector(s) for %s on %s port(s) %s; "
            "supervisor oracle on port %d; manifest %s",
            arguments.collectors,
            supervisor.spec.describe(),
            arguments.host,
            ports,
            topology.endpoint.port,
            topology.manifest_path,
        )
        while not stop_requested.is_set():
            supervisor.health_check()
            durable = await _topo_durable_reports(supervisor)
            if (
                killed is None
                and arguments.kill_after_reports is not None
                and durable >= arguments.kill_after_reports
            ):
                index = arguments.kill_collector
                if not 0 <= index < arguments.collectors:
                    raise ReproError(
                        f"--kill-collector {index} is out of range for "
                        f"{arguments.collectors} collector(s)"
                    )
                if supervisor.is_alive(index):
                    supervisor.kill(index)
                    killed = supervisor.handles[index].collector_id
                    get_logger("topo").info(
                        "topology: killed collector %s after %d durable "
                        "report(s)",
                        killed,
                        durable,
                    )
            if (
                arguments.stop_after_reports is not None
                and durable >= arguments.stop_after_reports
            ):
                break
            try:
                await asyncio.wait_for(stop_requested.wait(), 0.2)
            except asyncio.TimeoutError:
                pass
        aggregator = await topology.collect()
        merged = aggregator.merged_session()
        recovered_reports = sum(
            state.num_reports
            for state in supervisor.recovered_states().values()
        )
        return {
            "merged": merged,
            "stats": {
                "collectors": supervisor.describe(),
                "routing": topology.routing,
                "dead": [
                    handle.collector_id
                    for handle in supervisor.handles
                    if handle.status == "dead"
                ],
                "killed": killed,
                "recovered_reports": recovered_reports,
                "reports": merged.num_reports,
            },
        }
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        await topology.stop()


def _run_topo_launch(arguments: argparse.Namespace) -> int:
    from .topology import LocalTopology

    try:
        spec, domain = _contract_from_args(arguments)
        topology = LocalTopology(
            spec,
            domain,
            base_dir=arguments.dir,
            collectors=arguments.collectors,
            shards=arguments.shards,
            routing=arguments.routing,
            host=arguments.host,
            checkpoint_interval=arguments.checkpoint_interval,
            resilience=(
                resilience_defaults.default_resilience_config()
                if arguments.publish_resilience
                else None
            ),
        )
        outcome = asyncio.run(_topo_launch_main(arguments, topology))
        merged = outcome["merged"]
        stats = outcome["stats"]
    except (ReproError, OSError, ValueError) as error:
        print(f"topo launch: {error}", file=sys.stderr)
        return 2
    dead = stats["dead"]
    recovered_reports = stats["recovered_reports"]
    get_logger("topo").info(
        "topology collected %d report(s); dead: %s; recovered %d "
        "report(s) from durable checkpoints",
        merged.num_reports,
        dead or "none",
        recovered_reports,
    )
    estimator = merged.snapshot() if merged.num_reports else None
    rendered = _render_estimates(estimator, merged)
    payload = _estimates_payload(estimator, merged)
    payload["topology"] = stats
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


def _run_topo_inspect(arguments: argparse.Namespace) -> int:
    from .observability import MetricsSnapshot
    from .topology import load_manifest
    from .topology.pull import pull_control, pull_stats_payload

    try:
        manifest = load_manifest(arguments.dir)

        async def gather():
            collectors = []
            rollup = MetricsSnapshot.empty()
            for entry in manifest["collectors"]:
                host, port = entry["host"], int(entry["port"])
                try:
                    answer = await pull_stats_payload(host, port, timeout=5.0)
                    collectors.append(
                        {"reachable": True, "stats": answer["stats"]}
                    )
                    # Tree-wide metrics rollup: every collector's snapshot
                    # folds in through the same additive merge algebra the
                    # checkpoint fan-in uses.
                    metrics_state = answer.get("metrics")
                    if isinstance(metrics_state, dict):
                        try:
                            rollup = rollup.merge(
                                MetricsSnapshot.from_state_dict(metrics_state)
                            )
                        except ValueError:
                            pass  # version-skewed collector: skip its metrics
                except ReproError as error:
                    collectors.append(
                        {
                            "reachable": False,
                            "collector_id": entry["collector_id"],
                            "error": str(error),
                        }
                    )
            oracle = manifest.get("supervisor") or {}
            verdict = None
            if oracle.get("port"):
                try:
                    answer = await pull_control(
                        str(oracle["host"]),
                        int(oracle["port"]),
                        {"what": "recovered"},
                        timeout=5.0,
                    )
                    verdict = answer.payload
                except ReproError as error:
                    verdict = {"error": str(error)}
            return {
                "manifest": manifest,
                "collectors": collectors,
                "supervisor": verdict,
                "metrics": rollup.state_dict(),
            }

        payload = asyncio.run(gather())
    except (ReproError, OSError, ValueError) as error:
        print(f"topo inspect: {error}", file=sys.stderr)
        return 2
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _expected_reports_by_collector(
    arguments: argparse.Namespace, manifest: Dict
) -> Optional[Dict[str, int]]:
    """Map a `repro load --json` report's per-target ACK counts onto
    collector ids, via the manifest's address book."""
    if not getattr(arguments, "expected_reports", None):
        return None
    from .core.exceptions import CollectionServiceError

    try:
        with open(arguments.expected_reports, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        raise CollectionServiceError(
            f"cannot read the load report "
            f"{arguments.expected_reports}: {error}"
        ) from error
    by_target = report.get("acked_by_target")
    if not isinstance(by_target, dict):
        raise CollectionServiceError(
            f"load report {arguments.expected_reports} carries no "
            f"acked_by_target ledger — re-run `repro load --json` with "
            f"this build"
        )
    by_address = {
        f"{entry['host']}:{int(entry['port'])}": entry["collector_id"]
        for entry in manifest["collectors"]
    }
    expected: Dict[str, int] = {}
    for address, counts in by_target.items():
        collector_id = by_address.get(str(address))
        if collector_id is None:
            raise CollectionServiceError(
                f"load report {arguments.expected_reports} credits "
                f"{address}, which is not a collector in this topology"
            )
        expected[collector_id] = expected.get(collector_id, 0) + int(
            counts.get("reports", 0)
        )
    return expected


def _run_topo_finalize(arguments: argparse.Namespace) -> int:
    """Fan in an existing tree from outside the launcher process.

    Live collectors are pulled over the wire; unreachable ones fall back
    to their last durable ``state.npz`` — the same supersede-by-collector-
    id merge the supervisor performs, so the result is identical to what
    the launcher would print.
    """
    from pathlib import Path

    from .core.exceptions import PartialCoverageError, WireFormatError
    from .resilience import STATUS_RECOVERED, RetryPolicy
    from .resilience.integrity import quarantine_checkpoint
    from .server import DURABLE_STATE_FILENAME
    from .topology import FanInAggregator, load_manifest

    try:
        manifest = load_manifest(arguments.dir)
        spec = ProtocolSpec.from_dict(manifest["spec"])
        domain = Domain(manifest["attributes"])
        aggregator = FanInAggregator(spec, domain)
        fallbacks = []
        lost: Dict[str, str] = {}
        statuses: Dict[str, str] = {}
        pull_retry = RetryPolicy(
            max_retries=2, base_delay=0.2, max_delay=1.0
        )

        async def gather():
            for entry in manifest["collectors"]:
                try:
                    await aggregator.pull(
                        entry["host"],
                        int(entry["port"]),
                        timeout=5.0,
                        retry=pull_retry,
                    )
                except ReproError:
                    fallbacks.append(entry)

        asyncio.run(gather())
        for entry in fallbacks:
            collector_id = entry["collector_id"]
            state_path = Path(entry["checkpoint_dir"]) / DURABLE_STATE_FILENAME
            if not state_path.exists():
                lost[collector_id] = (
                    f"unreachable and left no durable checkpoint at "
                    f"{state_path}"
                )
                print(
                    f"topo finalize: collector {collector_id} is "
                    f"{lost[collector_id]}; counting it as empty",
                    file=sys.stderr,
                )
                continue
            try:
                session = AggregationSession.restore(state_path)
            except WireFormatError as error:
                quarantined, report_path = quarantine_checkpoint(
                    state_path,
                    f"topo finalize of collector {collector_id}: {error}",
                )
                lost[collector_id] = f"checkpoint quarantined: {error}"
                print(
                    f"topo finalize: collector {collector_id} is "
                    f"unreachable and its checkpoint failed verification; "
                    f"quarantined to {quarantined} (report: {report_path})",
                    file=sys.stderr,
                )
                continue
            tokens = session.checkpoint_extra.get("acked_tokens", {})
            aggregator.ingest_session(
                collector_id,
                session,
                tokens if isinstance(tokens, dict) else {},
            )
            statuses[collector_id] = STATUS_RECOVERED
            print(
                f"topo finalize: collector {collector_id} is "
                f"unreachable; recovered {session.num_reports} report(s) "
                f"from {state_path}",
                file=sys.stderr,
            )
        expected = _expected_reports_by_collector(arguments, manifest)
        coverage = aggregator.coverage_report(
            expected=expected, lost=lost, statuses=statuses
        )
        if not coverage.complete:
            print(coverage.summary(), file=sys.stderr)
        if not arguments.allow_partial:
            coverage.raise_if_partial("topo finalize")
        merged = aggregator.merged_session()
        estimator = merged.snapshot() if merged.num_reports else None
        if estimator is not None:
            estimator.metadata["coverage"] = coverage.to_dict()
        rendered = _render_estimates(estimator, merged)
        payload = _estimates_payload(estimator, merged)
        payload["topology"] = {
            "collectors": list(aggregator.collector_ids),
            "unreachable": [entry["collector_id"] for entry in fallbacks],
            "reports": merged.num_reports,
        }
        payload["coverage"] = coverage.to_dict()
    except PartialCoverageError as error:
        print(f"topo finalize: {error}", file=sys.stderr)
        return 3
    except (ReproError, OSError, ValueError) as error:
        print(f"topo finalize: {error}", file=sys.stderr)
        return 2
    print(rendered)
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


def _run_topo(arguments: argparse.Namespace) -> int:
    if arguments.topo_command == "launch":
        return _run_topo_launch(arguments)
    if arguments.topo_command == "inspect":
        return _run_topo_inspect(arguments)
    return _run_topo_finalize(arguments)


def _hh_option_strings(arguments: argparse.Namespace) -> list:
    """The dedicated ``hh`` flags as KEY=VALUE strings for _parse_options.

    Placed *before* the user's raw ``--option`` pairs so an explicit
    ``--option`` always wins over a dedicated flag's default.
    """
    return [
        f"oracle={json.dumps(arguments.oracle)}",
        f"fanout={arguments.fanout}",
        f"threshold={arguments.threshold}",
        f"top_k={arguments.top_k}",
    ]


def _render_discovery(result, spec: ProtocolSpec, num_reports: int) -> str:
    """Human-readable discovery walk (``result=None`` for no reports)."""
    lines = [
        f"protocol  : {spec.describe()}",
        f"reports   : {num_reports}",
    ]
    if result is None:
        lines.append("no reports; nothing to discover")
        return "\n".join(lines)
    lines.append(
        "levels    : "
        + "  ".join(
            f"b={bits}:n={count},cut={threshold:.4f}"
            for bits, count, threshold in zip(
                result.level_bits, result.level_reports, result.thresholds
            )
        )
    )
    lines.append(
        f"top-{len(result.hitters)} heavy hitters "
        f"({result.confidence:.0%} confidence):"
    )
    for rank, hitter in enumerate(result.hitters, start=1):
        names = ",".join(hitter.attributes) or "<none set>"
        lines.append(
            f"  {rank:2d}. cell {hitter.index:>6d}  "
            f"freq {hitter.frequency:+.4f} ± {hitter.half_width:.4f}  "
            f"[{names}]"
        )
    return "\n".join(lines)


def _run_hh_encode(arguments: argparse.Namespace) -> int:
    # `hh encode` is `encode` with the protocol pinned to HH and the
    # dedicated discovery flags folded into the option list.
    arguments.protocol = "HH"
    arguments.option = _hh_option_strings(arguments) + list(arguments.option)
    return _run_encode(arguments)


def _run_hh_aggregate(arguments: argparse.Namespace) -> int:
    try:
        if arguments.restore and (
            arguments.spec or arguments.dimension or arguments.attributes
        ):
            print(
                "hh aggregate: --restore carries the session's own spec and "
                "domain; --spec/--dimension/--attributes cannot be combined "
                "with it",
                file=sys.stderr,
            )
            return 2
        domain = None
        if not arguments.restore:
            if not arguments.spec:
                print(
                    "hh aggregate: --spec is required unless --restore is "
                    "given",
                    file=sys.stderr,
                )
                return 2
            if arguments.attributes:
                domain = Domain(
                    [name.strip() for name in arguments.attributes.split(",")]
                )
            elif arguments.dimension:
                domain = Domain.binary(arguments.dimension)
            else:
                print(
                    "hh aggregate: pass --dimension or --attributes to "
                    "describe the collection domain (or --restore a "
                    "checkpoint)",
                    file=sys.stderr,
                )
                return 2
        no_input = arguments.input == "none" or (
            arguments.restore
            and arguments.input == "-"
            and sys.stdin.isatty()
        )
        # Same first-frame trick as `aggregate`: in an `hh encode |
        # hh aggregate` pipeline, having one frame (or EOF) in hand
        # guarantees the producer already wrote --spec-out.
        stdin_frames = None
        first_frame = None
        if not no_input and arguments.input == "-":
            stdin_frames = split_report_frames(sys.stdin.buffer)
            first_frame = next(stdin_frames, None)
        if arguments.restore:
            session = AggregationSession.restore(arguments.restore)
            print(
                f"restored session with {session.num_reports} reports from "
                f"{arguments.restore}",
                file=sys.stderr,
            )
        else:
            session = AggregationSession(
                load_protocol_spec(arguments.spec), domain
            )
        if session.spec.protocol != "HH":
            print(
                f"hh aggregate: the spec describes "
                f"{session.spec.protocol!r}, not the HH discovery protocol "
                f"(use plain `repro aggregate` for marginal estimates)",
                file=sys.stderr,
            )
            return 2
        if stdin_frames is not None:
            if first_frame is not None:
                session.submit(first_frame)
                for frame in stdin_frames:
                    session.submit(frame)
        elif not no_input:
            with open(arguments.input, "rb") as source:
                for frame in split_report_frames(source):
                    session.submit(frame)
        if arguments.checkpoint:
            session.checkpoint(arguments.checkpoint)
            print(f"wrote {arguments.checkpoint}", file=sys.stderr)
        estimator = session.snapshot()
        result = (
            estimator.discover(
                top_k=arguments.top_k, confidence=arguments.confidence
            )
            if estimator is not None
            else None
        )
    except BrokenPipeError:
        raise  # handled quietly in main(); not an aggregate failure
    except (ReproError, OSError, ValueError) as error:
        print(f"hh aggregate: {error}", file=sys.stderr)
        return 2
    rendered = _render_discovery(result, session.spec, session.num_reports)
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        payload = {
            "spec": session.spec.to_dict(),
            "num_reports": session.num_reports,
            "session": session.metadata,
            "discovery": result.to_dict() if result is not None else None,
        }
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


def _hh_topology_fan_in(arguments: argparse.Namespace) -> AggregationSession:
    """Fan in the tree's per-collector states for discovery.

    The same pull-then-durable-fallback walk as ``topo finalize``, kept
    strict: a collector that is unreachable *and* left no durable state is
    an error, because a partial fan-in would silently skew the top-k.
    """
    from pathlib import Path

    from .resilience import RetryPolicy
    from .server import DURABLE_STATE_FILENAME
    from .topology import FanInAggregator, load_manifest

    manifest = load_manifest(arguments.topology)
    spec = ProtocolSpec.from_dict(manifest["spec"])
    domain = Domain(manifest["attributes"])
    aggregator = FanInAggregator(spec, domain)
    fallbacks = []
    pull_retry = RetryPolicy(max_retries=2, base_delay=0.2, max_delay=1.0)

    async def gather():
        for entry in manifest["collectors"]:
            try:
                await aggregator.pull(
                    entry["host"],
                    int(entry["port"]),
                    timeout=5.0,
                    retry=pull_retry,
                )
            except ReproError:
                fallbacks.append(entry)

    asyncio.run(gather())
    for entry in fallbacks:
        collector_id = entry["collector_id"]
        state_path = Path(entry["checkpoint_dir"]) / DURABLE_STATE_FILENAME
        if not state_path.exists():
            raise ReproError(
                f"collector {collector_id} is unreachable and left no "
                f"durable checkpoint at {state_path}"
            )
        session = AggregationSession.restore(state_path)
        tokens = session.checkpoint_extra.get("acked_tokens", {})
        aggregator.ingest_session(
            collector_id, session, tokens if isinstance(tokens, dict) else {}
        )
        print(
            f"hh discover: collector {collector_id} is unreachable; "
            f"recovered {session.num_reports} report(s) from {state_path}",
            file=sys.stderr,
        )
    return aggregator.merged_session()


def _run_hh_discover(arguments: argparse.Namespace) -> int:
    from .heavyhitters import exact_top_k, precision_recall

    try:
        if arguments.topology:
            if arguments.epsilon is not None:
                print(
                    "hh discover: --topology takes the collection contract "
                    "from the tree's manifest; drop --epsilon (and the "
                    "other protocol flags)",
                    file=sys.stderr,
                )
                return 2
            spec, domain, fleet_kwargs = _load_topology_contract(arguments)
            dimension = domain.dimension
        else:
            if arguments.epsilon is None:
                print(
                    "hh discover: --epsilon is required without --topology",
                    file=sys.stderr,
                )
                return 2
            options = _parse_options(
                _hh_option_strings(arguments) + list(arguments.option)
            )
            spec = ProtocolSpec(
                protocol="HH",
                epsilon=arguments.epsilon,
                max_width=arguments.width,
                options=options,
            )
            dimension = arguments.dimension
            domain = Domain.binary(dimension)
        if spec.protocol != "HH":
            print(
                f"hh discover: the topology collects "
                f"{spec.protocol!r}, not the HH discovery protocol",
                file=sys.stderr,
            )
            return 2
        protocol = spec.build()
        if spec.max_width > dimension:
            print(
                f"hh discover: --width {spec.max_width} exceeds the "
                f"{dimension}-attribute domain",
                file=sys.stderr,
            )
            return 2

        generator = np.random.default_rng(arguments.seed)
        dataset = make_dataset(
            arguments.dataset, arguments.population, dimension, generator
        )
        if arguments.topology:
            # frames_for_dataset consumes `generator` exactly like
            # run_streaming below, so both modes perturb identically and
            # the discovered top-k is bit-for-bit comparable.
            frames = LoadGenerator.frames_for_dataset(
                spec, dataset, arguments.batch_size, rng=generator
            )
            fleet = LoadGenerator(
                spec,
                domain,
                frames=frames,
                num_clients=arguments.clients,
                connect_timeout=arguments.connect_timeout,
                **fleet_kwargs,
            )
            report = asyncio.run(fleet.run())
            print(
                f"delivered {report.acked_reports} report(s) in "
                f"{report.frames} frame(s) over {report.connections} "
                f"connection(s)",
                file=sys.stderr,
            )
            session = _hh_topology_fan_in(arguments)
            estimator = session.snapshot() if session.num_reports else None
            num_reports = session.num_reports
        else:
            estimator = protocol.run_streaming(
                dataset, generator, batch_size=arguments.batch_size
            )
            num_reports = dataset.size
        result = (
            estimator.discover(confidence=arguments.confidence)
            if estimator is not None
            else None
        )
        exact = exact_top_k(dataset, protocol.top_k)
        precision, recall = (
            precision_recall(result.indices, exact)
            if result is not None
            else (0.0, 0.0)
        )
    except BrokenPipeError:
        raise  # handled quietly in main(); not a discovery failure
    except (ReproError, OSError, ValueError) as error:
        print(f"hh discover: {error}", file=sys.stderr)
        return 2
    rendered = "\n".join(
        [
            _render_discovery(result, spec, num_reports),
            "exact     : " + " ".join(str(index) for index in exact),
            f"precision : {precision:.3f}    recall : {recall:.3f}",
        ]
    )
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        payload = {
            "spec": spec.to_dict(),
            "mode": "topology" if arguments.topology else "local",
            "dataset": {
                "name": arguments.dataset,
                "population": arguments.population,
                "dimension": dimension,
                "seed": arguments.seed,
                "batch_size": arguments.batch_size,
            },
            "num_reports": num_reports,
            "discovery": result.to_dict() if result is not None else None,
            "exact_top_k": [int(index) for index in exact],
            "precision": precision,
            "recall": recall,
        }
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


def _run_hh(arguments: argparse.Namespace) -> int:
    if arguments.hh_command == "encode":
        return _run_hh_encode(arguments)
    if arguments.hh_command == "aggregate":
        return _run_hh_aggregate(arguments)
    return _run_hh_discover(arguments)


def _watch_targets(arguments: argparse.Namespace) -> List[Tuple[str, int]]:
    """Resolve watch targets from HOST:PORT operands and/or a manifest."""
    targets: List[Tuple[str, int]] = []
    for operand in arguments.targets:
        host, separator, port_text = operand.rpartition(":")
        if not separator or not host:
            raise ValueError(f"watch target {operand!r} is not HOST:PORT")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"watch target {operand!r} has a non-numeric port"
            ) from None
        targets.append((host, port))
    if arguments.topology:
        from .topology import load_manifest

        manifest = load_manifest(arguments.topology)
        for entry in manifest["collectors"]:
            targets.append((str(entry["host"]), int(entry["port"])))
    if not targets:
        raise ValueError(
            "watch needs at least one HOST:PORT target or --topology DIR"
        )
    return targets


def _run_watch(arguments: argparse.Namespace) -> int:
    from .observability.watch import RateTracker, render_watch, sample_targets

    try:
        targets = _watch_targets(arguments)
    except (ValueError, ReproError, OSError) as error:
        print(f"watch: {error}", file=sys.stderr)
        return 2
    tracker = RateTracker()
    try:
        while True:
            payloads = asyncio.run(
                sample_targets(targets, timeout=arguments.timeout)
            )
            if arguments.json:
                json.dump(payloads, sys.stdout)
                sys.stdout.write("\n")
                sys.stdout.flush()
            else:
                print(render_watch(payloads, tracker))
            if arguments.once:
                # A single frame cannot show interval rates; still exit
                # non-zero if nothing answered, so scripts can assert
                # liveness with `repro watch --once`.
                reachable = sum(
                    1 for payload in payloads if not payload.get("error")
                )
                return 0 if reachable else 1
            print(file=sys.stdout)
            time.sleep(max(arguments.interval, 0.1))
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = _build_parser().parse_args(argv)
    configure_logging(arguments.log_level, json_mode=arguments.log_json)
    try:
        if arguments.command == "list":
            return _run_list(arguments)
        if arguments.command == "encode":
            return _run_encode(arguments)
        if arguments.command == "aggregate":
            return _run_aggregate(arguments)
        if arguments.command == "serve":
            return _run_serve(arguments)
        if arguments.command == "load":
            return _run_load(arguments)
        if arguments.command == "topo":
            return _run_topo(arguments)
        if arguments.command == "hh":
            return _run_hh(arguments)
        if arguments.command == "watch":
            return _run_watch(arguments)
        return _run_experiment(arguments)
    except BrokenPipeError:
        # Downstream closed early (e.g. `repro aggregate | head`); point
        # stdout at devnull so the interpreter's shutdown flush cannot
        # raise again, and exit quietly.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, AttributeError, ValueError):  # best effort
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
