"""Command-line interface for regenerating the paper's tables and figures.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig4 --quick
    python -m repro.cli run table2 --output table2.txt
    python -m repro.cli run fig9 --full --json fig9.json

``run`` executes one experiment module (quick preset by default), prints the
rendered text table, and can additionally persist sweep-style results to JSON
for later analysis or plotting.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Dict, Optional, Sequence

from .experiments import (
    categorical,
    fig3_taxi_heatmap,
    fig4_vary_n,
    fig5_vary_k,
    fig6_vary_d_em,
    fig7_chi2,
    fig8_chow_liu,
    fig9_vary_eps,
    fig10_freq_oracles,
    table2_bounds,
    table3_em_failures,
)
from .execution import available_executors
from .experiments.config import SweepConfig
from .experiments.harness import SweepResult
from .io import save_sweep_json

__all__ = ["EXPERIMENTS", "main"]

#: Experiment name -> (module, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig3": (fig3_taxi_heatmap, "taxi attribute-correlation heat map (Figure 3)"),
    "fig4": (fig4_vary_n, "error vs population size N (Figure 4)"),
    "fig5": (fig5_vary_k, "error vs marginal width k (Figure 5)"),
    "fig6": (fig6_vary_d_em, "InpEM baseline vs InpHT/MargPS at larger d (Figure 6)"),
    "fig7": (fig7_chi2, "chi-squared association tests (Figure 7)"),
    "fig8": (fig8_chow_liu, "Chow-Liu dependency trees (Figure 8)"),
    "fig9": (fig9_vary_eps, "error vs privacy parameter epsilon (Figure 9)"),
    "fig10": (fig10_freq_oracles, "frequency-oracle comparison (Figure 10)"),
    "table2": (table2_bounds, "communication/error bounds (Table 2)"),
    "table3": (table3_em_failures, "InpEM failure rates (Table 3)"),
    "categorical": (categorical, "categorical marginals via binary encoding (Cor. 6.1)"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'Marginal Release "
        "Under Local Differential Privacy' (SIGMOD 2018).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    scale = run_parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        default=True,
        help="use the fast, small-N preset (default)",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="use the paper-scale parameter grid (slow)",
    )
    run_parser.add_argument(
        "--output", help="also write the rendered table to this text file"
    )
    run_parser.add_argument(
        "--json",
        help="for sweep experiments, also write the raw results to this JSON file",
    )
    run_parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="for sweep experiments, stream the dataset through the "
        "client/accumulator pipeline in record batches of this size",
    )
    run_parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="S",
        help="for sweep experiments, spread streamed batches over this many "
        "mergeable accumulator shards (estimates are shard-invariant)",
    )
    run_parser.add_argument(
        "--executor",
        choices=available_executors(),
        default=None,
        help="for sweep experiments, evaluate accumulator shards on this "
        "execution backend (estimates are identical across backends)",
    )
    run_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="W",
        help="worker count for the thread/process executors",
    )
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _run_experiment(arguments: argparse.Namespace) -> int:
    module, _ = EXPERIMENTS[arguments.experiment]
    config = module.default_config(quick=not arguments.full)
    streaming_overrides = {}
    if arguments.batch_size is not None:
        streaming_overrides["batch_size"] = arguments.batch_size
    if arguments.shards is not None:
        streaming_overrides["shards"] = arguments.shards
    if arguments.executor is not None:
        streaming_overrides["executor"] = arguments.executor
    if arguments.workers is not None:
        streaming_overrides["workers"] = arguments.workers
    if (
        arguments.shards is not None
        and arguments.shards > 1
        and arguments.batch_size is None
    ):
        print(
            "--shards > 1 requires --batch-size: without batching the whole "
            "dataset is a single report batch and only one shard would be used",
            file=sys.stderr,
        )
        return 2
    if (
        arguments.workers is not None
        and arguments.workers > 1
        and (arguments.executor or "serial") == "serial"
    ):
        print(
            "--workers > 1 has no effect with the serial executor; add "
            "--executor thread or --executor process",
            file=sys.stderr,
        )
        return 2
    if (
        arguments.workers is not None
        and arguments.workers > 1
        and (arguments.shards or 1) < 2
    ):
        print(
            "--workers > 1 requires --shards > 1: parallelism is per-shard, "
            "so extra workers would idle on a single shard",
            file=sys.stderr,
        )
        return 2
    if streaming_overrides:
        if not isinstance(config, SweepConfig):
            print(
                f"--batch-size/--shards/--executor/--workers only apply to "
                f"sweep experiments; {arguments.experiment} is not one",
                file=sys.stderr,
            )
            return 2
        config = dataclasses.replace(config, **streaming_overrides)
    result = module.run(config)
    rendered = module.render(result)
    print(rendered)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"\nwrote {arguments.output}", file=sys.stderr)
    if arguments.json:
        if isinstance(result, SweepResult):
            save_sweep_json(result, arguments.json)
            print(f"wrote {arguments.json}", file=sys.stderr)
        else:
            print(
                f"--json is only supported for sweep experiments; "
                f"{arguments.experiment} is not one",
                file=sys.stderr,
            )
            return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            _, description = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0
    return _run_experiment(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
