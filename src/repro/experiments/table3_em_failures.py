"""Table 3 — failure rate of the InpEM baseline at small epsilon.

Paper setting: taxi data, a grid of (N, d, k, eps) combinations with small
eps, counting for how many of the target marginals the EM decode terminates
immediately and returns the uniform prior ("failed" marginals).

Expected shape: for the smallest eps and larger d the failure rate
approaches 100% (the paper reports 120/120 and 276/276 failures for its two
largest settings), and it falls as eps or N grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.privacy import PrivacyBudget
from ..datasets.taxi import make_taxi_dataset
from ..protocols.inp_em import InpEM
from .reporting import format_table

__all__ = [
    "EMFailureSetting",
    "Table3Config",
    "Table3Result",
    "default_config",
    "run",
    "render",
]


@dataclass(frozen=True)
class EMFailureSetting:
    """One row of the Table 3 grid."""

    population: int
    dimension: int
    width: int
    epsilon: float


#: The grid the paper reports (Table 3).
PAPER_SETTINGS: Tuple[EMFailureSetting, ...] = (
    EMFailureSetting(2**16, 8, 1, 0.2),
    EMFailureSetting(2**18, 8, 2, 0.1),
    EMFailureSetting(2**16, 8, 2, 0.2),
    EMFailureSetting(2**16, 12, 2, 0.2),
    EMFailureSetting(2**18, 16, 2, 0.1),
    EMFailureSetting(2**18, 16, 2, 0.2),
    EMFailureSetting(2**19, 24, 2, 0.2),
)

#: A reduced grid with the same qualitative contrast for quick runs.
QUICK_SETTINGS: Tuple[EMFailureSetting, ...] = (
    EMFailureSetting(2**12, 8, 2, 0.1),
    EMFailureSetting(2**12, 8, 2, 0.2),
    EMFailureSetting(2**12, 12, 2, 0.1),
)


@dataclass(frozen=True)
class Table3Config:
    settings: Tuple[EMFailureSetting, ...] = PAPER_SETTINGS
    convergence_threshold: float = 1e-5
    seed: int = 20180610


@dataclass(frozen=True)
class Table3Result:
    config: Table3Config
    #: Per setting: (failed marginals, total marginals).
    failures: Tuple[Tuple[EMFailureSetting, int, int], ...]

    def failure_rate(self, setting: EMFailureSetting) -> float:
        for entry, failed, total in self.failures:
            if entry == setting:
                return failed / total
        raise KeyError(setting)


def default_config(quick: bool = True) -> Table3Config:
    return Table3Config(settings=QUICK_SETTINGS if quick else PAPER_SETTINGS)


def run(config: Table3Config | None = None) -> Table3Result:
    """Count immediate-convergence failures of InpEM across the grid."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    failures: List[Tuple[EMFailureSetting, int, int]] = []
    for setting in config.settings:
        dataset = make_taxi_dataset(setting.population, d=setting.dimension, rng=rng)
        protocol = InpEM(
            PrivacyBudget(setting.epsilon),
            max_width=setting.width,
            convergence_threshold=config.convergence_threshold,
        )
        estimator = protocol.run(dataset, rng=rng)
        marginals = dataset.domain.all_marginals(setting.width)
        failed = 0
        for beta in marginals:
            result = estimator.query_with_diagnostics(beta)
            if result.failed:
                failed += 1
        failures.append((setting, failed, len(marginals)))
    return Table3Result(config=config, failures=tuple(failures))


def render(result: Table3Result) -> str:
    rows: List[Dict[str, object]] = []
    for setting, failed, total in result.failures:
        rows.append(
            {
                "N": setting.population,
                "d": setting.dimension,
                "k": setting.width,
                "epsilon": setting.epsilon,
                "failed/total": f"{failed}/{total}",
                "failure_rate": round(failed / total, 3),
            }
        )
    return format_table(rows, title="Table 3: InpEM failure rate at small epsilon")
