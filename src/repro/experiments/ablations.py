"""Ablation experiments for the design choices called out in DESIGN.md.

Two design decisions the paper discusses but does not plot get their own
experiments here so the benchmark suite can quantify them:

* **Vanilla vs Wang-optimised unary-encoding probabilities** for the
  parallel-RR protocols (the paper adopts the optimised variant but notes it
  "makes little difference").
* **Sampling vs budget splitting**: the Section 3.1 argument that sampling
  one piece of information at full epsilon beats releasing every piece at
  epsilon/m.  We compare InpHT (sampling) against a budget-split variant
  realised by running InpEM-style per-attribute splitting, and also compare
  the analytic variances of the two strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.privacy import PrivacyBudget
from ..core.rng import spawn_rngs
from ..datasets.movielens import make_movielens_dataset
from ..mechanisms.sampling import sample_variance, split_budget_variance
from ..protocols.inp_rr import InpRR
from ..protocols.marg_rr import MargRR
from .config import LN3
from .metrics import mean_total_variation
from .reporting import format_table

__all__ = [
    "OUEAblationConfig",
    "OUEAblationResult",
    "run_oue_ablation",
    "render_oue_ablation",
    "SampleVsSplitConfig",
    "SampleVsSplitResult",
    "run_sample_vs_split",
    "render_sample_vs_split",
    "ProjectionAblationConfig",
    "ProjectionAblationResult",
    "run_projection_ablation",
    "render_projection_ablation",
]


# --------------------------------------------------------------------------- #
# Vanilla vs optimised unary encoding
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OUEAblationConfig:
    population: int = 2**14
    dimension: int = 8
    width: int = 2
    epsilon: float = LN3
    repetitions: int = 3
    seed: int = 20180610


@dataclass(frozen=True)
class OUEAblationResult:
    config: OUEAblationConfig
    #: ``(protocol, variant) -> (mean TV, std TV)``.
    errors: Dict[Tuple[str, str], Tuple[float, float]]

    def relative_difference(self, protocol: str) -> float:
        """(vanilla - optimised) / optimised mean error."""
        vanilla, _ = self.errors[(protocol, "vanilla")]
        optimised, _ = self.errors[(protocol, "optimized")]
        if optimised == 0:
            return 0.0
        return (vanilla - optimised) / optimised


def run_oue_ablation(config: OUEAblationConfig | None = None) -> OUEAblationResult:
    config = config or OUEAblationConfig()
    master = np.random.default_rng(config.seed)
    budget = PrivacyBudget(config.epsilon)
    errors: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for protocol_class in (InpRR, MargRR):
        for variant, optimized in (("vanilla", False), ("optimized", True)):
            measurements: List[float] = []
            for rng in spawn_rngs(master, config.repetitions):
                dataset = make_movielens_dataset(
                    config.population, d=config.dimension, rng=rng
                )
                protocol = protocol_class(
                    budget, config.width, optimized_probabilities=optimized
                )
                estimator = protocol.run(dataset, rng=rng)
                measurements.append(
                    mean_total_variation(dataset, estimator, widths=[config.width])
                )
            errors[(protocol_class.name, variant)] = (
                float(np.mean(measurements)),
                float(np.std(measurements)),
            )
    return OUEAblationResult(config=config, errors=errors)


def render_oue_ablation(result: OUEAblationResult) -> str:
    rows = [
        {
            "protocol": protocol,
            "variant": variant,
            "mean_tv": round(mean, 4),
            "std_tv": round(std, 4),
        }
        for (protocol, variant), (mean, std) in sorted(result.errors.items())
    ]
    return format_table(rows, title="Ablation: vanilla vs optimised unary encoding")


# --------------------------------------------------------------------------- #
# Raw unbiased estimates vs simplex-projected post-processing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProjectionAblationConfig:
    population: int = 2**14
    dimension: int = 8
    width: int = 2
    epsilon: float = LN3
    protocols: Tuple[str, ...] = ("InpHT", "MargPS")
    repetitions: int = 3
    seed: int = 20180610


@dataclass(frozen=True)
class ProjectionAblationResult:
    config: ProjectionAblationConfig
    #: ``(protocol, variant) -> mean TV``, variant in {"raw", "projected"}.
    errors: Dict[Tuple[str, str], float]

    def improvement(self, protocol: str) -> float:
        """Relative error reduction from projecting onto the simplex."""
        raw = self.errors[(protocol, "raw")]
        projected = self.errors[(protocol, "projected")]
        if raw == 0:
            return 0.0
        return (raw - projected) / raw


def run_projection_ablation(
    config: ProjectionAblationConfig | None = None,
) -> ProjectionAblationResult:
    """Measure whether simplex projection (post-processing) helps accuracy."""
    from ..postprocess import SimplexProjectedEstimator
    from ..protocols.registry import make_protocol

    config = config or ProjectionAblationConfig()
    master = np.random.default_rng(config.seed)
    budget = PrivacyBudget(config.epsilon)
    accumulator: Dict[Tuple[str, str], List[float]] = {}
    for rng in spawn_rngs(master, config.repetitions):
        dataset = make_movielens_dataset(
            config.population, d=config.dimension, rng=rng
        )
        for name in config.protocols:
            estimator = make_protocol(name, budget, config.width).run(dataset, rng=rng)
            raw_error = mean_total_variation(dataset, estimator, widths=[config.width])
            projected_error = mean_total_variation(
                dataset, SimplexProjectedEstimator(estimator), widths=[config.width]
            )
            accumulator.setdefault((name, "raw"), []).append(raw_error)
            accumulator.setdefault((name, "projected"), []).append(projected_error)
    errors = {key: float(np.mean(values)) for key, values in accumulator.items()}
    return ProjectionAblationResult(config=config, errors=errors)


def render_projection_ablation(result: ProjectionAblationResult) -> str:
    rows = [
        {
            "protocol": protocol,
            "variant": variant,
            "mean_tv": round(error, 4),
        }
        for (protocol, variant), error in sorted(result.errors.items())
    ]
    return format_table(
        rows,
        title=(
            "Ablation: raw unbiased estimates vs simplex-projected tables "
            f"(d={result.config.dimension}, k={result.config.width}, "
            f"N={result.config.population})"
        ),
    )


# --------------------------------------------------------------------------- #
# Sampling vs budget splitting
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SampleVsSplitConfig:
    epsilon: float = LN3
    population: int = 2**16
    num_items: Tuple[int, ...] = (2, 8, 36, 120)


@dataclass(frozen=True)
class SampleVsSplitResult:
    config: SampleVsSplitConfig
    #: ``num_items -> (sampling variance, splitting variance)``.
    variances: Dict[int, Tuple[float, float]]

    def advantage(self, num_items: int) -> float:
        """Splitting variance divided by sampling variance (>1 favours sampling)."""
        sampling, splitting = self.variances[num_items]
        return splitting / sampling if sampling > 0 else float("inf")


def run_sample_vs_split(
    config: SampleVsSplitConfig | None = None,
) -> SampleVsSplitResult:
    config = config or SampleVsSplitConfig()
    budget = PrivacyBudget(config.epsilon)
    variances: Dict[int, Tuple[float, float]] = {}
    for num_items in config.num_items:
        variances[num_items] = (
            sample_variance(budget, num_items, config.population),
            split_budget_variance(budget, num_items, config.population),
        )
    return SampleVsSplitResult(config=config, variances=variances)


def render_sample_vs_split(result: SampleVsSplitResult) -> str:
    rows = [
        {
            "num_items_m": num_items,
            "var_sampling": sampling,
            "var_splitting": splitting,
            "split/sample": round(result.advantage(num_items), 2),
        }
        for num_items, (sampling, splitting) in sorted(result.variances.items())
    ]
    return format_table(
        rows,
        title=(
            "Ablation: sample-one-at-full-eps vs split-eps-across-all "
            f"(eps={result.config.epsilon:.2f}, N={result.config.population})"
        ),
    )
