"""Figure 10 (Appendix B.2) — frequency-oracle baselines vs InpHT.

Paper setting: lightly skewed synthetic data, e^eps = 3, k = 2, dimension d
varied, comparing InpHT against the generic frequency-oracle route to
marginals: Optimised Local Hashing (InpOLH) and the Hadamard count-mean
sketch (InpHTCMS, g = 5 hash functions, width w = 256).

Expected shape: for small d InpOLH matches InpHT's accuracy but its decoding
cost grows as N * 2^d (the paper's runs timed out beyond d = 8); InpHTCMS is
fast but noticeably less accurate because the sketch is tuned for heavy
hitters, not flat marginals.
"""

from __future__ import annotations

from typing import Dict

from .config import LN3, SweepConfig
from .harness import SweepResult, run_sweep
from .reporting import format_series

__all__ = ["PROTOCOLS", "default_config", "run", "render"]

#: The methods Figure 10 compares.
PROTOCOLS = ("InpHT", "InpOLH", "InpHTCMS")


def default_config(quick: bool = True) -> SweepConfig:
    """Sweep configuration for Figure 10."""
    if quick:
        return SweepConfig(
            protocols=PROTOCOLS,
            dataset="skewed",
            population_sizes=(2**13,),
            dimensions=(4, 6),
            widths=(2,),
            epsilons=(LN3,),
            repetitions=2,
            protocol_options={"InpHTCMS": {"num_hashes": 5, "width": 256}},
        )
    return SweepConfig(
        protocols=PROTOCOLS,
        dataset="skewed",
        population_sizes=(2**17,),
        dimensions=(4, 6, 8, 10, 12),
        widths=(2,),
        epsilons=(LN3,),
        repetitions=5,
        protocol_options={"InpHTCMS": {"num_hashes": 5, "width": 256}},
    )


def run(config: SweepConfig | None = None) -> SweepResult:
    """Run the Figure 10 sweep."""
    return run_sweep(config or default_config())


def render(result: SweepResult) -> str:
    """Text rendering: error vs dimension, one curve per method."""
    population = result.config.population_sizes[0]
    series: Dict[str, list] = {
        name: result.series(name, "dimension", width=2, population=population)
        for name in result.config.protocols
    }
    return format_series(
        series,
        x_label="d",
        y_label="mean TV (k=2)",
        title=f"Figure 10: skewed synthetic data, N={population}",
    )
