"""Figure 9 (Appendix B.1) — effect of the privacy parameter epsilon.

Paper setting: movielens data, N = 2^18, d in {4, 8, 16}, k in {1, 2, 3},
eps from 0.4 to 1.4, all six core protocols.

Expected shape: error decreases as eps grows for every method; InpPS, InpRR
and MargRR remain unfavourable for k >= 2; MargPS overtakes MargHT as eps
increases; InpHT consistently outperforms all other methods.
"""

from __future__ import annotations

from typing import Dict

from ..protocols.registry import CORE_PROTOCOL_NAMES
from .config import SweepConfig
from .harness import SweepResult, run_sweep
from .reporting import format_series

__all__ = ["default_config", "run", "render"]


def default_config(quick: bool = True) -> SweepConfig:
    """Sweep configuration for Figure 9."""
    if quick:
        return SweepConfig(
            protocols=tuple(CORE_PROTOCOL_NAMES),
            dataset="movielens",
            population_sizes=(2**14,),
            dimensions=(8,),
            widths=(2,),
            epsilons=(0.4, 0.8, 1.2),
            repetitions=2,
        )
    return SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="movielens",
        population_sizes=(2**18,),
        dimensions=(4, 8, 16),
        widths=(1, 2, 3),
        epsilons=(0.4, 0.6, 0.8, 1.0, 1.2, 1.4),
        repetitions=10,
    )


def run(config: SweepConfig | None = None) -> SweepResult:
    """Run the Figure 9 sweep."""
    return run_sweep(config or default_config())


def render(result: SweepResult) -> str:
    """Text rendering: error as a function of eps, one block per (d, k)."""
    population = result.config.population_sizes[0]
    blocks = []
    for dimension in result.config.dimensions:
        for width in result.config.widths:
            if width > dimension:
                continue
            series: Dict[str, list] = {
                name: result.series(
                    name,
                    "epsilon",
                    dimension=dimension,
                    width=width,
                    population=population,
                )
                for name in result.config.protocols
            }
            blocks.append(
                format_series(
                    series,
                    x_label="epsilon",
                    y_label="mean TV",
                    title=f"Figure 9: d={dimension}, k={width}, N={population}",
                )
            )
    return "\n\n".join(blocks)
