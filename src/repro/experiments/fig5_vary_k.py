"""Figure 5 — effect of the marginal width k on reconstruction error.

Paper setting: taxi data, N = 2^18, e^eps = 3, d = 8, k from 1 to 7, all six
core protocols.

Expected shape: InpHT is the method of choice for k <= d/2; as k approaches
d the Hadamard coefficient set approaches the full domain and InpRR becomes
competitive (at a much higher communication cost); the Marg* methods degrade
faster because their per-marginal populations shrink while the marginal
tables grow.
"""

from __future__ import annotations

from typing import Dict

from ..protocols.registry import CORE_PROTOCOL_NAMES
from .config import LN3, SweepConfig
from .harness import SweepResult, run_sweep
from .reporting import format_series

__all__ = ["default_config", "run", "render"]


def default_config(quick: bool = True) -> SweepConfig:
    """Sweep configuration for Figure 5."""
    if quick:
        return SweepConfig(
            protocols=tuple(CORE_PROTOCOL_NAMES),
            dataset="taxi",
            population_sizes=(2**14,),
            dimensions=(8,),
            widths=(1, 2, 3, 4),
            epsilons=(LN3,),
            repetitions=2,
        )
    return SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="taxi",
        population_sizes=(2**18,),
        dimensions=(8,),
        widths=(1, 2, 3, 4, 5, 6, 7),
        epsilons=(LN3,),
        repetitions=10,
    )


def run(config: SweepConfig | None = None) -> SweepResult:
    """Run the Figure 5 sweep."""
    return run_sweep(config or default_config())


def render(result: SweepResult) -> str:
    """Text rendering: error as a function of k, one curve per protocol."""
    dimension = result.config.dimensions[0]
    population = result.config.population_sizes[0]
    series: Dict[str, list] = {
        name: result.series(
            name, "width", dimension=dimension, population=population
        )
        for name in result.config.protocols
    }
    return format_series(
        series,
        x_label="k",
        y_label="mean TV",
        title=f"Figure 5: d={dimension}, N={population} (mean TV distance vs k)",
    )
