"""Generic sweep harness shared by the per-figure experiment modules.

The harness runs a :class:`~repro.experiments.config.SweepConfig`: for every
grid point it generates the dataset, runs every protocol with its own random
stream, measures the mean total-variation error over the relevant marginal
widths, and aggregates the repetitions into mean / standard deviation — the
numbers behind each curve (and error bar) in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ProtocolConfigurationError
from ..core.rng import ensure_rng, spawn_rngs
from ..datasets import (
    BinaryDataset,
    make_movielens_dataset,
    make_taxi_dataset,
    skewed_dataset,
    uniform_dataset,
)
from ..execution import make_executor
from ..service.spec import ProtocolSpec
from .config import SweepConfig
from .metrics import mean_total_variation

__all__ = [
    "DATASET_NAMES",
    "SweepPoint",
    "SweepResult",
    "make_dataset",
    "run_sweep",
]

#: The named evaluation datasets :func:`make_dataset` can build (the CLI's
#: ``--dataset`` choices derive from this tuple).
DATASET_NAMES = ("taxi", "movielens", "skewed", "uniform")


def make_dataset(name: str, n: int, d: int, rng) -> BinaryDataset:
    """Build one of the named evaluation datasets at the requested size."""
    generator = ensure_rng(rng)
    if name == "taxi":
        return make_taxi_dataset(n, d=d, rng=generator)
    if name == "movielens":
        return make_movielens_dataset(n, d=d, rng=generator)
    if name == "skewed":
        return skewed_dataset(n, d, rng=generator)
    if name == "uniform":
        return uniform_dataset(n, d, rng=generator)
    raise ProtocolConfigurationError(
        f"unknown dataset {name!r}; expected one of {list(DATASET_NAMES)}"
    )


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated result of one (protocol, N, d, k, eps) grid point."""

    protocol: str
    population: int
    dimension: int
    width: int
    epsilon: float
    mean_error: float
    std_error: float
    errors: Tuple[float, ...]

    def as_row(self) -> Dict[str, float]:
        """Flat representation for table rendering and serialisation."""
        return {
            "protocol": self.protocol,
            "N": self.population,
            "d": self.dimension,
            "k": self.width,
            "epsilon": round(self.epsilon, 4),
            "mean_tv": self.mean_error,
            "std_tv": self.std_error,
        }


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep."""

    config: SweepConfig
    points: Tuple[SweepPoint, ...]

    def filter(
        self,
        protocol: Optional[str] = None,
        population: Optional[int] = None,
        dimension: Optional[int] = None,
        width: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> List[SweepPoint]:
        """Select grid points matching the given coordinates."""
        selected = []
        for point in self.points:
            if protocol is not None and point.protocol != protocol:
                continue
            if population is not None and point.population != population:
                continue
            if dimension is not None and point.dimension != dimension:
                continue
            if width is not None and point.width != width:
                continue
            if epsilon is not None and not np.isclose(point.epsilon, epsilon):
                continue
            selected.append(point)
        return selected

    def series(
        self, protocol: str, x_axis: str, **fixed
    ) -> List[Tuple[float, float, float]]:
        """One curve: (x, mean error, std error) for a protocol.

        ``x_axis`` is one of ``"population"``, ``"dimension"``, ``"width"``
        or ``"epsilon"``; the remaining coordinates should be pinned through
        ``fixed`` keyword arguments.
        """
        points = self.filter(protocol=protocol, **fixed)
        points.sort(key=lambda point: getattr(point, x_axis))
        return [
            (float(getattr(point, x_axis)), point.mean_error, point.std_error)
            for point in points
        ]

    def best_protocol(self, **fixed) -> str:
        """Name of the protocol with the lowest mean error at a grid point."""
        points = self.filter(**fixed)
        if not points:
            raise ProtocolConfigurationError(
                f"no sweep points match the coordinates {fixed}"
            )
        return min(points, key=lambda point: point.mean_error).protocol

    def as_rows(self) -> List[Dict[str, float]]:
        return [point.as_row() for point in self.points]


def run_sweep(config: SweepConfig) -> SweepResult:
    """Execute a sweep and aggregate the per-repetition errors.

    When any streaming/parallelism knob is set the protocols run through
    ``run_streaming`` on one shared executor (worker pools are reused
    across the whole grid and released at the end); otherwise the one-shot
    ``run()`` path is kept.
    """
    # workers > 1 implies a parallel executor (SweepConfig validation), so
    # the executor check alone covers it.
    streaming = (
        config.batch_size is not None
        or config.shards > 1
        or config.executor != "serial"
    )
    executor = (
        make_executor(config.executor, config.workers) if streaming else None
    )
    try:
        return _run_sweep_grid(config, executor)
    finally:
        if executor is not None:
            executor.close()


def _run_sweep_grid(config: SweepConfig, executor) -> SweepResult:
    master = np.random.default_rng(config.seed)
    points: List[SweepPoint] = []
    for dimension in config.dimensions:
        for population in config.population_sizes:
            for width in config.widths:
                if width > dimension:
                    continue
                for epsilon in config.epsilons:
                    per_protocol: Dict[str, List[float]] = {
                        name: [] for name in config.protocols
                    }
                    repetition_rngs = spawn_rngs(master, config.repetitions)
                    for repetition_rng in repetition_rngs:
                        dataset = make_dataset(
                            config.dataset, population, dimension, repetition_rng
                        )
                        for name in config.protocols:
                            # The grid cell's declarative contract; build()
                            # is the same path a deployed client would take.
                            spec = ProtocolSpec(
                                protocol=name,
                                epsilon=epsilon,
                                max_width=width,
                                options=config.protocol_options.get(name, {}),
                            )
                            protocol = spec.build()
                            if executor is None:
                                estimator = protocol.run(dataset, rng=repetition_rng)
                            else:
                                estimator = protocol.run_streaming(
                                    dataset,
                                    rng=repetition_rng,
                                    batch_size=config.batch_size,
                                    shards=config.shards,
                                    executor=executor,
                                )
                            error = mean_total_variation(
                                dataset, estimator, widths=[width]
                            )
                            per_protocol[name].append(error)
                    for name, errors in per_protocol.items():
                        points.append(
                            SweepPoint(
                                protocol=name,
                                population=population,
                                dimension=dimension,
                                width=width,
                                epsilon=epsilon,
                                mean_error=float(np.mean(errors)),
                                std_error=float(np.std(errors)),
                                errors=tuple(errors),
                            )
                        )
    return SweepResult(config=config, points=tuple(points))
