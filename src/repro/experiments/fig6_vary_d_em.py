"""Figure 6 — 2-way marginal error at larger dimensionalities: InpEM vs ours.

Paper setting: taxi data widened to larger d by duplicating columns, k = 2,
several eps values, comparing the Fanti et al. EM baseline (InpEM, with
convergence threshold Omega = 1e-5) against InpHT and MargPS.

Expected shape: InpEM improves as eps grows but stays several times worse
than the unbiased estimators, and is far slower (thousands of EM iterations
per marginal vs closed-form estimates).
"""

from __future__ import annotations

from typing import Dict

from .config import LN3, SweepConfig
from .harness import SweepResult, run_sweep
from .reporting import format_series

__all__ = ["PROTOCOLS", "default_config", "run", "render"]

#: The three methods Figure 6 compares.
PROTOCOLS = ("InpEM", "InpHT", "MargPS")


def default_config(quick: bool = True) -> SweepConfig:
    """Sweep configuration for Figure 6."""
    if quick:
        return SweepConfig(
            protocols=PROTOCOLS,
            dataset="taxi",
            population_sizes=(2**13,),
            dimensions=(8, 12),
            widths=(2,),
            epsilons=(0.6, LN3),
            repetitions=2,
            protocol_options={"InpEM": {"convergence_threshold": 1e-5}},
        )
    return SweepConfig(
        protocols=PROTOCOLS,
        dataset="taxi",
        population_sizes=(2**18,),
        dimensions=(8, 12, 16, 20, 24),
        widths=(2,),
        epsilons=(0.4, 0.6, 0.8, 1.0, 1.2),
        repetitions=10,
        protocol_options={"InpEM": {"convergence_threshold": 1e-5}},
    )


def run(config: SweepConfig | None = None) -> SweepResult:
    """Run the Figure 6 sweep."""
    return run_sweep(config or default_config())


def render(result: SweepResult) -> str:
    """Text rendering: error vs epsilon, one block per dimensionality."""
    population = result.config.population_sizes[0]
    blocks = []
    for dimension in result.config.dimensions:
        series: Dict[str, list] = {
            name: result.series(
                name,
                "epsilon",
                dimension=dimension,
                width=2,
                population=population,
            )
            for name in result.config.protocols
        }
        blocks.append(
            format_series(
                series,
                x_label="epsilon",
                y_label="mean TV (k=2)",
                title=f"Figure 6: taxi data, d={dimension}, N={population}",
            )
        )
    return "\n\n".join(blocks)
