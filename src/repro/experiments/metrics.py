"""Error metrics used throughout the experimental evaluation.

The paper's headline metric is the *mean total variation distance* between
true and reconstructed marginals, averaged over every marginal of the target
widths.  These helpers compute that (and a few related diagnostics) for any
protocol estimator against the dataset it was run on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core import bitops
from ..core.exceptions import MarginalQueryError
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator

__all__ = [
    "MarginalErrorReport",
    "marginal_errors",
    "mean_total_variation",
    "mean_total_variation_by_width",
]


@dataclass(frozen=True)
class MarginalErrorReport:
    """Error of one reconstructed marginal."""

    beta: int
    width: int
    total_variation: float
    max_cell_error: float


def marginal_errors(
    dataset: BinaryDataset,
    estimator: MarginalEstimator,
    widths: Sequence[int] = (1, 2, 3),
    betas: Optional[Iterable[int]] = None,
) -> List[MarginalErrorReport]:
    """Per-marginal errors of an estimator against the exact marginals.

    Either an explicit list of marginal masks (``betas``) or a collection of
    widths (every marginal of each width is evaluated) can be supplied.
    """
    if betas is None:
        masks: List[int] = []
        for width in widths:
            if width < 1 or width > estimator.workload.max_width:
                raise MarginalQueryError(
                    f"width {width} outside the estimator's workload "
                    f"(max {estimator.workload.max_width})"
                )
            masks.extend(dataset.domain.all_marginals(width))
    else:
        masks = [dataset.domain.mask_of(beta) for beta in betas]

    reports: List[MarginalErrorReport] = []
    for mask in masks:
        exact = dataset.marginal(mask)
        estimated = estimator.query(mask)
        difference = np.abs(exact.values - estimated.values)
        reports.append(
            MarginalErrorReport(
                beta=mask,
                width=bitops.popcount(mask),
                total_variation=0.5 * float(difference.sum()),
                max_cell_error=float(difference.max()),
            )
        )
    return reports


def mean_total_variation(
    dataset: BinaryDataset,
    estimator: MarginalEstimator,
    widths: Sequence[int] = (1, 2, 3),
) -> float:
    """Mean TV distance over every marginal of the given widths."""
    reports = marginal_errors(dataset, estimator, widths=widths)
    return float(np.mean([report.total_variation for report in reports]))


def mean_total_variation_by_width(
    dataset: BinaryDataset,
    estimator: MarginalEstimator,
    widths: Sequence[int] = (1, 2, 3),
) -> Dict[int, float]:
    """Mean TV distance broken down by marginal width."""
    reports = marginal_errors(dataset, estimator, widths=widths)
    result: Dict[int, float] = {}
    for width in widths:
        relevant = [r.total_variation for r in reports if r.width == width]
        result[width] = float(np.mean(relevant)) if relevant else float("nan")
    return result
