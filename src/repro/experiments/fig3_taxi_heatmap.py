"""Table 1 / Figures 1–3 — the taxi dataset, its example marginal and heat map.

These are the paper's descriptive artefacts: the 8-attribute taxi schema
(Table 1), the example ``(M_pick, M_drop)`` 2-way marginal showing that most
trips start and end inside Manhattan (Figure 2), and the Pearson-correlation
heat map over all attribute pairs (Figure 3).  Regenerating them validates
that the synthetic taxi generator reproduces the documented structure the
later experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.correlation import correlation_matrix
from ..datasets.taxi import (
    DEPENDENT_PAIRS,
    INDEPENDENT_PAIRS,
    TAXI_ATTRIBUTES,
    make_taxi_dataset,
)
from .reporting import format_table

__all__ = ["HeatmapConfig", "HeatmapResult", "default_config", "run", "render"]


@dataclass(frozen=True)
class HeatmapConfig:
    """Configuration of the descriptive taxi experiment."""

    population: int = 2**15
    seed: int = 20180610


@dataclass(frozen=True)
class HeatmapResult:
    """Correlation matrix plus the example Manhattan marginal."""

    attributes: Tuple[str, ...]
    correlations: np.ndarray
    manhattan_marginal: np.ndarray

    def correlation(self, first: str, second: str) -> float:
        i = self.attributes.index(first)
        j = self.attributes.index(second)
        return float(self.correlations[i, j])

    def strongly_dependent_pairs(self, threshold: float = 0.3) -> List[Tuple[str, str]]:
        """Attribute pairs whose absolute correlation exceeds the threshold."""
        pairs = []
        for i in range(len(self.attributes)):
            for j in range(i + 1, len(self.attributes)):
                if abs(self.correlations[i, j]) >= threshold:
                    pairs.append((self.attributes[i], self.attributes[j]))
        return pairs


def default_config(quick: bool = True) -> HeatmapConfig:
    return HeatmapConfig(population=2**14 if quick else 2**20)


def run(config: HeatmapConfig | None = None) -> HeatmapResult:
    """Generate the taxi data and compute the descriptive statistics."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    dataset = make_taxi_dataset(config.population, rng=rng)
    correlations = correlation_matrix(dataset)
    manhattan = dataset.marginal(["M_pick", "M_drop"]).values
    return HeatmapResult(
        attributes=tuple(dataset.attribute_names),
        correlations=correlations,
        manhattan_marginal=manhattan,
    )


def render(result: HeatmapResult) -> str:
    """Text rendering of the heat map, the example marginal and the checks."""
    rows = []
    for i, name in enumerate(result.attributes):
        row: Dict[str, object] = {"attribute": name}
        for j, other in enumerate(result.attributes):
            row[other] = round(float(result.correlations[i, j]), 2)
        rows.append(row)
    heatmap = format_table(rows, title="Figure 3: taxi attribute correlations")

    marginal_rows = [
        {
            "M_pick": pick,
            "M_drop": drop,
            "probability": float(
                result.manhattan_marginal[(pick) | (drop << 1)]
            ),
        }
        for pick in (1, 0)
        for drop in (1, 0)
    ]
    marginal = format_table(
        marginal_rows, title="Figure 2: (M_pick, M_drop) 2-way marginal"
    )

    check_rows = []
    for first, second in DEPENDENT_PAIRS:
        check_rows.append(
            {
                "pair": f"{first}/{second}",
                "expected": "dependent",
                "pearson": round(result.correlation(first, second), 3),
            }
        )
    for first, second in INDEPENDENT_PAIRS:
        check_rows.append(
            {
                "pair": f"{first}/{second}",
                "expected": "(near) independent",
                "pearson": round(result.correlation(first, second), 3),
            }
        )
    checks = format_table(check_rows, title="Documented correlation structure")
    return "\n\n".join([heatmap, marginal, checks])
