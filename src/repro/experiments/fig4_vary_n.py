"""Figure 4 — mean total-variation error as the population size N varies.

Paper setting: movielens data, eps = ln 3, d in {4, 8, 16}, k in {1, 2, 3},
N from 50K to 0.5M (powers of two), all six core protocols, 10 repetitions.

Expected shape: error falls roughly like 1/sqrt(N) for every method; InpPS
(and for d = 16 also InpRR) collapse as d grows; InpHT is the most accurate
(or tied) across the board, with MargPS/MargHT next.
"""

from __future__ import annotations

from typing import Dict

from ..protocols.registry import CORE_PROTOCOL_NAMES
from .config import LN3, SweepConfig
from .harness import SweepResult, run_sweep
from .reporting import format_series

__all__ = ["default_config", "run", "render"]


def default_config(quick: bool = True) -> SweepConfig:
    """Sweep configuration for Figure 4.

    ``quick=True`` (the benchmark default) shrinks N and the number of
    repetitions so the sweep completes in seconds while preserving the
    methods' relative ordering; ``quick=False`` uses the paper's grid.
    """
    if quick:
        return SweepConfig(
            protocols=tuple(CORE_PROTOCOL_NAMES),
            dataset="movielens",
            population_sizes=(2**13, 2**15),
            dimensions=(4, 8),
            widths=(1, 2),
            epsilons=(LN3,),
            repetitions=2,
        )
    return SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="movielens",
        population_sizes=(2**16, 2**17, 2**18, 2**19),
        dimensions=(4, 8, 16),
        widths=(1, 2, 3),
        epsilons=(LN3,),
        repetitions=10,
    )


def run(config: SweepConfig | None = None) -> SweepResult:
    """Run the Figure 4 sweep."""
    return run_sweep(config or default_config())


def render(result: SweepResult) -> str:
    """Text rendering: one block per (d, k), one curve per protocol."""
    blocks = []
    for dimension in result.config.dimensions:
        for width in result.config.widths:
            if width > dimension:
                continue
            series: Dict[str, list] = {
                name: result.series(
                    name, "population", dimension=dimension, width=width
                )
                for name in result.config.protocols
            }
            blocks.append(
                format_series(
                    series,
                    x_label="N",
                    y_label="mean TV",
                    title=f"Figure 4: d={dimension}, k={width} (mean TV distance)",
                )
            )
    return "\n\n".join(blocks)
