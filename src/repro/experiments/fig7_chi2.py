"""Figure 7 — chi-squared association testing from private marginals.

Paper setting: taxi data, N = 256K, eps = 1.1, the three strongly dependent
pairs and three (near-)independent pairs from Figure 3, comparing the
chi-squared statistic computed from exact marginals against statistics
computed from InpHT and MargPS marginals.

Expected shape: the private and exact statistics agree on the dependent
pairs for both methods (the statistics are huge); for the independent pairs
the statistics sit near the critical value and MargPS occasionally commits a
type-I style error where InpHT tracks the exact decision more reliably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.association import AssociationComparison, compare_association_tests
from ..core.privacy import PrivacyBudget
from ..datasets.taxi import DEPENDENT_PAIRS, INDEPENDENT_PAIRS, make_taxi_dataset
from ..protocols.registry import make_protocol
from .reporting import format_table

__all__ = ["Chi2Config", "Chi2Result", "default_config", "run", "render"]


@dataclass(frozen=True)
class Chi2Config:
    """Configuration of the association-testing experiment."""

    population: int = 2**18
    epsilon: float = 1.1
    protocols: Tuple[str, ...] = ("InpHT", "MargPS")
    pairs: Tuple[Tuple[str, str], ...] = DEPENDENT_PAIRS + INDEPENDENT_PAIRS
    confidence: float = 0.95
    seed: int = 20180610


@dataclass(frozen=True)
class Chi2Result:
    """Per-protocol association-test comparisons."""

    config: Chi2Config
    comparisons: Dict[str, Tuple[AssociationComparison, ...]]

    def agreement_rate(self, protocol: str) -> float:
        """Fraction of pairs where the private decision matches the exact one."""
        entries = self.comparisons[protocol]
        return sum(entry.agrees for entry in entries) / len(entries)


def default_config(quick: bool = True) -> Chi2Config:
    return Chi2Config(population=2**14 if quick else 2**18)


def run(config: Chi2Config | None = None) -> Chi2Result:
    """Run the exact and private chi-squared tests for every pair."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    dataset = make_taxi_dataset(config.population, rng=rng)
    budget = PrivacyBudget(config.epsilon)
    comparisons: Dict[str, Tuple[AssociationComparison, ...]] = {}
    for name in config.protocols:
        protocol = make_protocol(name, budget, max_width=2)
        estimator = protocol.run(dataset, rng=rng)
        comparisons[name] = tuple(
            compare_association_tests(
                dataset, estimator, config.pairs, confidence=config.confidence
            )
        )
    return Chi2Result(config=config, comparisons=comparisons)


def render(result: Chi2Result) -> str:
    """Text rendering: one row per (pair, protocol) with both statistics."""
    rows: List[Dict[str, object]] = []
    for protocol, comparisons in result.comparisons.items():
        for comparison in comparisons:
            rows.append(
                {
                    "pair": "/".join(comparison.attributes),
                    "protocol": protocol,
                    "chi2_exact": round(comparison.exact.statistic, 2),
                    "chi2_private": round(comparison.private.statistic, 2),
                    "critical": round(comparison.exact.critical_value, 3),
                    "exact_dependent": comparison.exact.dependent,
                    "private_dependent": comparison.private.dependent,
                    "agrees": comparison.agrees,
                }
            )
    return format_table(
        rows,
        title=(
            f"Figure 7: chi-squared tests on taxi data "
            f"(N={result.config.population}, eps={result.config.epsilon})"
        ),
    )
