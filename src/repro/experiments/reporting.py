"""Plain-text rendering of experiment results.

The benchmark harness regenerates each table/figure as rows of numbers; these
helpers format them the way the paper's tables read (fixed-width columns,
one row per configuration) so the output of ``pytest benchmarks/`` can be
compared against the paper at a glance and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    parts = [title, header, separator, body] if title else [header, separator, body]
    return "\n".join(part for part in parts if part)


def format_series(
    series: Mapping[str, Sequence[tuple]], x_label: str, y_label: str, title: str = ""
) -> str:
    """Render several (x, y, err) curves as a merged text table.

    ``series`` maps a curve name (protocol) to a sequence of
    ``(x, mean, std)`` points; the output has one row per x value and one
    column per curve, which is the text analogue of the paper's plots.
    """
    x_values: List[float] = []
    for points in series.values():
        for x, *_ in points:
            if x not in x_values:
                x_values.append(x)
    x_values.sort()
    rows: List[Dict[str, object]] = []
    for x in x_values:
        row: Dict[str, object] = {x_label: x}
        for name, points in series.items():
            match = next((p for p in points if p[0] == x), None)
            row[name] = match[1] if match is not None else ""
        rows.append(row)
    heading = title or f"{y_label} vs {x_label}"
    return format_table(rows, title=heading)
