"""Table 2 — analytic communication and error bounds, and an empirical check.

The analytic half of this experiment simply evaluates the Table 2 expressions
at concrete (d, k).  The empirical half runs the six protocols once and
checks that the *measured* communication per user matches the analytic bit
counts and that the *measured* error ordering is consistent with the ordering
of the analytic error factors (the paper's headline claim that the bounds
predict practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.privacy import PrivacyBudget
from ..datasets.movielens import make_movielens_dataset
from ..protocols.registry import CORE_PROTOCOL_NAMES, make_protocol
from ..theory.bounds import communication_bits, error_exponent_factor
from .config import LN3
from .metrics import mean_total_variation
from .reporting import format_table

__all__ = ["Table2Config", "Table2Result", "default_config", "run", "render"]


@dataclass(frozen=True)
class Table2Config:
    """Configuration of the Table 2 regeneration."""

    dimension: int = 8
    width: int = 2
    population: int = 2**15
    epsilon: float = LN3
    seed: int = 20180610


@dataclass(frozen=True)
class Table2Result:
    """Analytic bounds alongside one empirical measurement per method."""

    config: Table2Config
    rows: Tuple[Dict[str, object], ...]

    def row(self, method: str) -> Dict[str, object]:
        for entry in self.rows:
            if entry["method"] == method:
                return entry
        raise KeyError(method)


def default_config(quick: bool = True) -> Table2Config:
    return Table2Config(population=2**13 if quick else 2**18)


def run(config: Table2Config | None = None) -> Table2Result:
    """Evaluate the analytic bounds and measure one run of each protocol."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    dataset = make_movielens_dataset(config.population, d=config.dimension, rng=rng)
    budget = PrivacyBudget(config.epsilon)

    rows: List[Dict[str, object]] = []
    for name in CORE_PROTOCOL_NAMES:
        protocol = make_protocol(name, budget, config.width)
        estimator = protocol.run(dataset, rng=rng)
        measured_error = mean_total_variation(dataset, estimator, widths=[config.width])
        rows.append(
            {
                "method": name,
                "comm_bits_analytic": communication_bits(
                    name, config.dimension, config.width
                ),
                "comm_bits_protocol": protocol.communication_bits(config.dimension),
                "error_factor": round(
                    error_exponent_factor(name, config.dimension, config.width), 2
                ),
                "measured_mean_tv": round(measured_error, 4),
            }
        )
    return Table2Result(config=config, rows=tuple(rows))


def render(result: Table2Result) -> str:
    return format_table(
        list(result.rows),
        title=(
            f"Table 2: bounds and one measurement "
            f"(d={result.config.dimension}, k={result.config.width}, "
            f"N={result.config.population}, eps={result.config.epsilon:.2f})"
        ),
    )
