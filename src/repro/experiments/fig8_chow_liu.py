"""Figure 8 — total mutual information of Chow–Liu trees fitted privately.

Paper setting: movielens data with d = 10, N = 200K, eps varying, comparing
the total (true) mutual information of dependency trees fitted from InpHT
and MargPS marginals against the non-private Chow–Liu tree.

Expected shape: trees fitted from InpHT marginals capture nearly the same
total mutual information as the non-private tree across the eps range;
MargPS is behind at small eps and catches up as eps grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.chow_liu import fit_chow_liu_tree
from ..analysis.mutual_information import pairwise_mutual_information
from ..core.privacy import PrivacyBudget
from ..core.rng import spawn_rngs
from ..datasets.movielens import make_movielens_dataset
from ..protocols.registry import make_protocol
from .reporting import format_table

__all__ = ["ChowLiuConfig", "ChowLiuResult", "default_config", "run", "render"]


@dataclass(frozen=True)
class ChowLiuConfig:
    """Configuration of the Bayesian-modelling experiment."""

    population: int = 200_000
    dimension: int = 10
    epsilons: Tuple[float, ...] = (0.4, 0.6, 0.8, 1.0, 1.2, 1.4)
    protocols: Tuple[str, ...] = ("InpHT", "MargPS")
    repetitions: int = 3
    seed: int = 20180610


@dataclass(frozen=True)
class ChowLiuResult:
    """Total true mutual information captured by each fitted tree."""

    config: ChowLiuConfig
    #: The non-private (optimal) tree's total mutual information.
    exact_total_mi: float
    #: ``(protocol, epsilon) -> (mean total MI, std over repetitions)``.
    private_total_mi: Dict[Tuple[str, float], Tuple[float, float]]

    def relative_quality(self, protocol: str, epsilon: float) -> float:
        """Private tree MI as a fraction of the non-private optimum."""
        mean, _ = self.private_total_mi[(protocol, epsilon)]
        if self.exact_total_mi <= 0:
            return 1.0
        return mean / self.exact_total_mi


def default_config(quick: bool = True) -> ChowLiuConfig:
    if quick:
        return ChowLiuConfig(
            population=2**14,
            dimension=8,
            epsilons=(0.6, 1.1),
            repetitions=2,
        )
    return ChowLiuConfig()


def run(config: ChowLiuConfig | None = None) -> ChowLiuResult:
    """Fit exact and private Chow–Liu trees and score them on the true MI."""
    config = config or default_config()
    master = np.random.default_rng(config.seed)
    dataset = make_movielens_dataset(
        config.population, d=config.dimension, rng=master
    )
    true_weights = pairwise_mutual_information(dataset)
    exact_tree = fit_chow_liu_tree(dataset)
    exact_total = exact_tree.total_weight_under(true_weights)

    private: Dict[Tuple[str, float], Tuple[float, float]] = {}
    for epsilon in config.epsilons:
        budget = PrivacyBudget(epsilon)
        for name in config.protocols:
            totals: List[float] = []
            for rng in spawn_rngs(master, config.repetitions):
                protocol = make_protocol(name, budget, max_width=2)
                estimator = protocol.run(dataset, rng=rng)
                tree = fit_chow_liu_tree(estimator)
                totals.append(tree.total_weight_under(true_weights))
            private[(name, epsilon)] = (
                float(np.mean(totals)),
                float(np.std(totals)),
            )
    return ChowLiuResult(
        config=config, exact_total_mi=exact_total, private_total_mi=private
    )


def render(result: ChowLiuResult) -> str:
    """Text rendering: total true MI captured per protocol and epsilon."""
    rows: List[Dict[str, object]] = []
    for (protocol, epsilon), (mean, std) in sorted(result.private_total_mi.items()):
        rows.append(
            {
                "protocol": protocol,
                "epsilon": round(epsilon, 2),
                "tree_total_MI": round(mean, 4),
                "std": round(std, 4),
                "fraction_of_optimal": round(
                    result.relative_quality(protocol, epsilon), 3
                ),
            }
        )
    rows.append(
        {
            "protocol": "non-private",
            "epsilon": "-",
            "tree_total_MI": round(result.exact_total_mi, 4),
            "std": 0.0,
            "fraction_of_optimal": 1.0,
        }
    )
    return format_table(
        rows,
        title=(
            f"Figure 8: Chow-Liu tree mutual information "
            f"(movielens, d={result.config.dimension}, N={result.config.population})"
        ),
    )
