"""Experiment configuration presets.

Every experiment module exposes a ``default_config(quick=...)`` built from
these dataclasses.  The ``paper`` presets use the parameter grids of the
corresponding figure/table in the paper; the ``quick`` presets shrink the
population sizes and repetition counts so the whole suite can regenerate in
minutes on a laptop (the *shape* of the results is preserved — error ratios
between methods are driven by d, k and eps, not by N alone).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.exceptions import ProtocolConfigurationError
from ..execution import available_executors
from ..service.spec import ProtocolSpec

__all__ = ["SweepConfig", "LN3"]

#: The paper's default privacy level, eps = ln 3 (~1.1).
LN3 = math.log(3.0)


@dataclass(frozen=True)
class SweepConfig:
    """A generic parameter sweep over (protocols x datasets x parameters).

    Attributes
    ----------
    protocols:
        Protocol names (see :mod:`repro.protocols.registry`).
    dataset:
        Which generator to use: ``"taxi"``, ``"movielens"``, ``"skewed"`` or
        ``"uniform"``.
    population_sizes:
        Values of N to sweep.
    dimensions:
        Values of d to sweep.
    widths:
        Values of the workload width k to sweep.
    epsilons:
        Values of the privacy parameter to sweep.
    repetitions:
        Number of independent repetitions per grid point (the paper uses 10).
    seed:
        Master seed for reproducibility.
    protocol_options:
        Extra keyword arguments per protocol name.
    batch_size:
        When set, protocols run through the streaming pipeline
        (:meth:`~repro.protocols.base.MarginalReleaseProtocol.run_streaming`)
        consuming the dataset in record batches of this size; ``None`` keeps
        the one-shot ``run()`` path.
    shards:
        Number of accumulator shards the streaming pipeline spreads batches
        over.  For a fixed seed the estimates depend only on ``batch_size``,
        never on ``shards``.
    executor:
        Execution backend evaluating the shards: ``"serial"`` (default),
        ``"thread"`` or ``"process"``.  Estimates are bit-for-bit identical
        across backends; only wall-clock time changes.
    workers:
        Worker count for the parallel backends; must stay 1 for the serial
        backend (extra workers could never run) and requires ``shards > 1``
        (parallelism is per-shard, so a single shard keeps extra workers
        idle).
    """

    protocols: Tuple[str, ...]
    dataset: str = "movielens"
    population_sizes: Tuple[int, ...] = (2**16,)
    dimensions: Tuple[int, ...] = (8,)
    widths: Tuple[int, ...] = (2,)
    epsilons: Tuple[float, ...] = (LN3,)
    repetitions: int = 3
    seed: int = 20180610
    protocol_options: Dict[str, Dict] = field(default_factory=dict)
    batch_size: Optional[int] = None
    shards: int = 1
    executor: str = "serial"
    workers: int = 1

    def __post_init__(self):
        if not self.protocols:
            raise ProtocolConfigurationError("a sweep needs at least one protocol")
        if self.repetitions < 1:
            raise ProtocolConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ProtocolConfigurationError(
                f"batch size must be >= 1 or None, got {self.batch_size}"
            )
        if self.shards < 1:
            raise ProtocolConfigurationError(
                f"shard count must be >= 1, got {self.shards}"
            )
        if self.shards > 1 and self.batch_size is None:
            raise ProtocolConfigurationError(
                "shards > 1 requires a batch_size: without batching the whole "
                "dataset is one report batch and only one shard would be used"
            )
        if self.executor not in available_executors():
            raise ProtocolConfigurationError(
                f"unknown executor {self.executor!r}; "
                f"available: {available_executors()}"
            )
        if self.workers < 1:
            raise ProtocolConfigurationError(
                f"worker count must be >= 1, got {self.workers}"
            )
        if self.workers > 1 and self.executor == "serial":
            raise ProtocolConfigurationError(
                "workers > 1 has no effect with the serial executor; "
                "pick executor='thread' or 'process'"
            )
        if self.workers > 1 and self.shards < 2:
            raise ProtocolConfigurationError(
                "workers > 1 requires shards > 1: parallelism is per-shard, "
                "so extra workers would idle on a single shard"
            )
        if any(n < 1 for n in self.population_sizes):
            raise ProtocolConfigurationError("population sizes must be positive")
        if any(d < 1 for d in self.dimensions):
            raise ProtocolConfigurationError("dimensions must be positive")
        if any(k < 1 for k in self.widths):
            raise ProtocolConfigurationError("widths must be positive")
        if any(eps <= 0 for eps in self.epsilons):
            raise ProtocolConfigurationError("epsilons must be positive")

    def grid_size(self) -> int:
        """Number of (protocol, N, d, k, eps, repetition) cells in the sweep."""
        return (
            len(self.protocols)
            * len(self.population_sizes)
            * len(self.dimensions)
            * len(self.widths)
            * len(self.epsilons)
            * self.repetitions
        )

    @classmethod
    def from_specs(
        cls, specs: Iterable[ProtocolSpec], **overrides
    ) -> "SweepConfig":
        """Build a sweep from declarative :class:`ProtocolSpec` objects.

        Each spec contributes its protocol name and options; the specs'
        shared epsilon and max_width seed ``epsilons``/``widths``.  Because
        a sweep crosses protocols with every epsilon and width, the specs
        must agree on both unless the corresponding axis is overridden
        explicitly (``epsilons=...`` / ``widths=...``).  Any other
        :class:`SweepConfig` field can be overridden the same way.
        """
        specs = tuple(specs)
        if not specs:
            raise ProtocolConfigurationError("a sweep needs at least one spec")
        for spec in specs:
            if not isinstance(spec, ProtocolSpec):
                raise ProtocolConfigurationError(
                    f"from_specs expects ProtocolSpec objects, "
                    f"got {type(spec).__name__}"
                )
        names = [spec.protocol for spec in specs]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ProtocolConfigurationError(
                f"each protocol may appear in one spec only; "
                f"duplicated: {duplicates}"
            )
        if "epsilons" not in overrides:
            epsilons = {spec.epsilon for spec in specs}
            if len(epsilons) > 1:
                raise ProtocolConfigurationError(
                    "specs disagree on epsilon "
                    f"({sorted(epsilons)}); a sweep runs every protocol at "
                    "every epsilon, so pass an explicit epsilons=... override"
                )
            overrides["epsilons"] = (specs[0].epsilon,)
        if "widths" not in overrides:
            widths = {spec.max_width for spec in specs}
            if len(widths) > 1:
                raise ProtocolConfigurationError(
                    f"specs disagree on max_width ({sorted(widths)}); a sweep "
                    "runs every protocol at every width, so pass an explicit "
                    "widths=... override"
                )
            overrides["widths"] = (specs[0].max_width,)
        if "protocol_options" not in overrides:
            overrides["protocol_options"] = {
                spec.protocol: dict(spec.options) for spec in specs if spec.options
            }
        return cls(protocols=tuple(names), **overrides)

    def specs(self) -> List[ProtocolSpec]:
        """The sweep's (protocol, epsilon, width) grid as ProtocolSpecs.

        One spec per grid cell, in protocol-major order — the exact
        configurations :func:`~repro.experiments.harness.run_sweep` builds.
        """
        return [
            ProtocolSpec(
                protocol=name,
                epsilon=epsilon,
                max_width=width,
                options=self.protocol_options.get(name, {}),
            )
            for name in self.protocols
            for epsilon in self.epsilons
            for width in self.widths
        ]
