"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``default_config(quick=...)``, ``run(config)`` and
``render(result)``; the pytest benchmarks in ``benchmarks/`` call these and
print the rendered tables, and EXPERIMENTS.md records the measured shapes
against the paper's.
"""

from . import (
    ablations,
    categorical,
    fig3_taxi_heatmap,
    fig4_vary_n,
    fig5_vary_k,
    fig6_vary_d_em,
    fig7_chi2,
    fig8_chow_liu,
    fig9_vary_eps,
    fig10_freq_oracles,
    table2_bounds,
    table3_em_failures,
)
from .config import LN3, SweepConfig
from .harness import SweepPoint, SweepResult, make_dataset, run_sweep
from .metrics import (
    MarginalErrorReport,
    marginal_errors,
    mean_total_variation,
    mean_total_variation_by_width,
)
from .reporting import format_series, format_table

__all__ = [
    "LN3",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "make_dataset",
    "marginal_errors",
    "MarginalErrorReport",
    "mean_total_variation",
    "mean_total_variation_by_width",
    "format_table",
    "format_series",
    "fig3_taxi_heatmap",
    "fig4_vary_n",
    "fig5_vary_k",
    "fig6_vary_d_em",
    "fig7_chi2",
    "fig8_chow_liu",
    "fig9_vary_eps",
    "fig10_freq_oracles",
    "table2_bounds",
    "table3_em_failures",
    "categorical",
    "ablations",
]
