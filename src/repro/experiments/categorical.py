"""Section 6.3 / Corollary 6.1 — marginals over categorical attributes.

The extension experiment: categorical attributes are compactly encoded into
``ceil(log2 r)`` binary attributes each, InpHT is run over the encoded
domain with workload width ``k_2`` (the total number of encoded bits of the
widest categorical marginal), and the reconstructed binary marginal is folded
back into a categorical table.

Expected shape: the error of a 2-way categorical marginal over attributes of
cardinality r behaves like the error of a ``2 * ceil(log2 r)``-way binary
marginal (Corollary 6.1), i.e. it grows with the attribute cardinalities but
remains small for low-cardinality attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.privacy import PrivacyBudget
from ..core.rng import ensure_rng
from ..datasets.encoding import CategoricalDomain, compact_binary_dimension, encode_compact
from ..protocols.inp_ht import InpHT
from .config import LN3
from .reporting import format_table

__all__ = [
    "CategoricalConfig",
    "CategoricalResult",
    "default_config",
    "run",
    "render",
]


@dataclass(frozen=True)
class CategoricalConfig:
    """Configuration of the categorical-encoding experiment."""

    population: int = 2**15
    cardinalities: Tuple[int, ...] = (4, 4, 3, 2)
    epsilon: float = LN3
    seed: int = 20180610


@dataclass(frozen=True)
class CategoricalResult:
    """Error of every 2-way categorical marginal under the compact encoding."""

    config: CategoricalConfig
    binary_dimension: int
    #: ``(first attribute, second attribute) -> total variation distance``.
    errors: Dict[Tuple[str, str], float]

    @property
    def mean_error(self) -> float:
        return float(np.mean(list(self.errors.values())))


def default_config(quick: bool = True) -> CategoricalConfig:
    return CategoricalConfig(population=2**13 if quick else 2**18)


def _sample_categorical_records(
    config: CategoricalConfig, rng
) -> Tuple[CategoricalDomain, np.ndarray]:
    """Correlated categorical records: adjacent attributes share a latent draw."""
    generator = ensure_rng(rng)
    names = [f"cat{i}" for i in range(len(config.cardinalities))]
    domain = CategoricalDomain(names, config.cardinalities)
    n = config.population
    latent = generator.random(n)
    columns = []
    for cardinality in config.cardinalities:
        # Attribute value follows the latent quantile with noise, so pairs of
        # attributes are positively associated.
        noisy = np.clip(latent + generator.normal(0, 0.25, size=n), 0, 0.999999)
        columns.append((noisy * cardinality).astype(np.int64))
    return domain, np.stack(columns, axis=1)


def run(config: CategoricalConfig | None = None) -> CategoricalResult:
    """Run InpHT over the compactly encoded categorical data."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    domain, records = _sample_categorical_records(config, rng)
    encoded = encode_compact(records, domain)
    binary = encoded.binary_dataset

    # The workload must cover the widest 2-way categorical marginal, i.e.
    # k_2 = max over pairs of the summed encoded widths.
    widths = domain.bits_per_attribute()
    k2 = max(
        widths[i] + widths[j]
        for i in range(domain.dimension)
        for j in range(i + 1, domain.dimension)
    )
    protocol = InpHT(PrivacyBudget(config.epsilon), max_width=k2)
    estimator = protocol.run(binary, rng=rng)

    errors: Dict[Tuple[str, str], float] = {}
    for i in range(domain.dimension):
        for j in range(i + 1, domain.dimension):
            first, second = domain.attributes[i], domain.attributes[j]
            mask = encoded.binary_mask_for([first, second])
            exact = binary.marginal(mask)
            private = estimator.query(mask)
            exact_categorical = encoded.categorical_marginal(
                [first, second], exact.values
            )
            private_categorical = encoded.categorical_marginal(
                [first, second], private.values
            )
            errors[(first, second)] = 0.5 * float(
                np.abs(exact_categorical - private_categorical).sum()
            )
    return CategoricalResult(
        config=config,
        binary_dimension=compact_binary_dimension(domain),
        errors=errors,
    )


def render(result: CategoricalResult) -> str:
    rows: List[Dict[str, object]] = [
        {
            "pair": f"{first}/{second}",
            "tv_distance": round(error, 4),
        }
        for (first, second), error in sorted(result.errors.items())
    ]
    rows.append({"pair": "MEAN", "tv_distance": round(result.mean_error, 4)})
    return format_table(
        rows,
        title=(
            "Corollary 6.1: 2-way categorical marginals via compact binary "
            f"encoding (d2={result.binary_dimension}, "
            f"N={result.config.population})"
        ),
    )
