"""LDP heavy-hitter and frequent-itemset discovery (``HH`` protocol family).

Prefix-tree iterative discovery (TreeHist/PEM-style) layered on the
library's frequency oracles: users are partitioned across prefix levels,
each level runs ``InpOLH``/``InpHT``/``InpHTCMS`` over its prefix domain,
below-threshold prefixes are pruned and the survivors' children expand on
the next level.  The per-level state is a full citizen of the accumulator
merge algebra, so discovery runs unchanged through
:class:`~repro.service.AggregationSession`, the socket server and the
multi-collector topology.
"""

# Import the protocols package (and with it the registry) before our own
# submodules: the registry also imports ``.protocol``, and resolving that
# cycle in this order works from either entry point.
from .. import protocols as _protocols  # noqa: F401
from .discovery import (
    DiscoveryConfig,
    DiscoveryResult,
    HeavyHitter,
    HeavyHitterEstimator,
    exact_top_k,
    precision_recall,
)
from .protocol import HeavyHitterReports, HeavyHitters, HeavyHittersAccumulator

__all__ = [
    "HeavyHitters",
    "HeavyHitterReports",
    "HeavyHittersAccumulator",
    "HeavyHitterEstimator",
    "HeavyHitter",
    "DiscoveryConfig",
    "DiscoveryResult",
    "exact_top_k",
    "precision_recall",
]
