"""The ``HH`` protocol: LDP heavy-hitter discovery over frequency oracles.

Full-domain frequency oracles (``InpOLH``, ``InpHT``, ``InpHTCMS``) estimate
every cell of ``{0,1}^d`` but drown rare cells in noise; heavy-hitter
discovery only needs the *frequent* cells, which a prefix tree finds with
far better signal.  ``HH`` partitions the population across
``L = ceil(d / fanout)`` levels: a user on level ``l`` runs the configured
oracle over the prefix domain of their first ``b_l = min((l+1) * fanout, d)``
record bits.  Each user still sends exactly one report, so the whole
protocol is ``epsilon``-LDP with no composition — the cost is that each
level sees only ``~N/L`` users.

Aggregation keeps one inner oracle accumulator per level.  Every inner
update is an exact integer sum (OLH support counts, sampled-coefficient
bincounts, ±1 sign sums), so the per-level state inherits the library's
merge algebra unchanged: any batch/shard/socket/topology grouping of the
same reports finalizes bit-for-bit identically.  ``finalize`` reconstructs
each level's prefix distribution and returns a
:class:`~repro.heavyhitters.discovery.HeavyHitterEstimator` — a regular
full-domain :class:`~repro.protocols.base.DistributionEstimator` (built
from the last level, which covers all ``d`` bits) that additionally walks
the levels to :meth:`~repro.heavyhitters.discovery.HeavyHitterEstimator.discover`
the top-k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import AggregationError, ProtocolConfigurationError
from ..core.marginals import MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..protocols.base import (
    Accumulator,
    MarginalReleaseProtocol,
    as_record_matrix,
)
from ..protocols.inp_ht import InpHT, InpHTReports
from ..protocols.inp_htcms import InpHTCMS, InpHTCMSReports
from ..protocols.inp_olh import InpOLH, InpOLHReports
from ..protocols.wire import ReportField, WireCodableReports, register_report_schema
from .discovery import DiscoveryConfig, HeavyHitterEstimator

__all__ = ["HeavyHitters", "HeavyHitterReports", "HeavyHittersAccumulator"]

#: Per-oracle packed report layout: (int64 columns, float64 columns).
_REPORT_COLUMNS: Dict[str, Tuple[int, int]] = {
    "InpOLH": (2, 0),  # seeds, noisy_buckets
    "InpHT": (1, 1),  # choices | noisy_values
    "InpHTCMS": (2, 1),  # hash_indices, coefficient_indices | noisy_signs
}


@dataclass(frozen=True)
class HeavyHitterReports(WireCodableReports):
    """One encoded batch: each user's level plus their inner oracle report.

    ``levels[i]`` names the prefix level user ``i`` was partitioned onto;
    ``int_data[i]`` / ``float_data[i]`` pack that user's inner report
    columns (the layout per oracle is ``_REPORT_COLUMNS``; unused float
    columns are width 0, e.g. OLH reports carry no float payload).
    """

    levels: np.ndarray
    int_data: np.ndarray
    float_data: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.levels.shape[0])


register_report_schema(
    "HH",
    HeavyHitterReports,
    fields=(
        ReportField("levels", np.int64),
        ReportField("int_data", np.int64, ndim=2),
        ReportField("float_data", np.float64, ndim=2),
    ),
)


def _pack_reports(oracle: str, reports) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten an inner report batch into (int64, float64) column blocks."""
    if oracle == "InpOLH":
        ints = np.column_stack((reports.seeds, reports.noisy_buckets))
        floats = np.empty((ints.shape[0], 0), dtype=np.float64)
    elif oracle == "InpHT":
        ints = np.asarray(reports.choices, dtype=np.int64)[:, None]
        floats = np.asarray(reports.noisy_values, dtype=np.float64)[:, None]
    else:
        ints = np.column_stack(
            (reports.hash_indices, reports.coefficient_indices)
        )
        floats = np.asarray(reports.noisy_signs, dtype=np.float64)[:, None]
    return np.ascontiguousarray(ints, dtype=np.int64), floats


def _unpack_reports(oracle: str, ints: np.ndarray, floats: np.ndarray):
    """Rebuild the inner report batch an oracle accumulator expects."""
    if oracle == "InpOLH":
        return InpOLHReports(
            seeds=np.ascontiguousarray(ints[:, 0]),
            noisy_buckets=np.ascontiguousarray(ints[:, 1]),
        )
    if oracle == "InpHT":
        return InpHTReports(
            choices=np.ascontiguousarray(ints[:, 0]),
            noisy_values=np.ascontiguousarray(floats[:, 0]),
        )
    return InpHTCMSReports(
        hash_indices=np.ascontiguousarray(ints[:, 0]),
        coefficient_indices=np.ascontiguousarray(ints[:, 1]),
        noisy_signs=np.ascontiguousarray(floats[:, 0]),
    )


class HeavyHittersAccumulator(Accumulator):
    """One mergeable inner oracle accumulator per prefix level.

    State keys are namespaced ``level{l:02d}__{inner key}`` (including each
    level's ``num_reports``), so checkpoints carry the full per-level
    partition and a restored accumulator finalizes identically.
    """

    def __init__(
        self,
        workload: MarginalWorkload,
        level_bits: Tuple[int, ...],
        inner: Tuple[Accumulator, ...],
        oracle: str,
        config: DiscoveryConfig,
    ):
        super().__init__(workload)
        self._level_bits = tuple(level_bits)
        self._inner = tuple(inner)
        self._oracle_name = oracle
        self._config = config

    def _ingest(self, reports: HeavyHitterReports) -> None:
        levels = np.asarray(reports.levels, dtype=np.int64)
        int_data = np.asarray(reports.int_data, dtype=np.int64)
        float_data = np.asarray(reports.float_data, dtype=np.float64)
        num_levels = len(self._inner)
        if levels.size and (levels.min() < 0 or levels.max() >= num_levels):
            raise AggregationError(
                f"report levels must lie in [0, {num_levels})"
            )
        int_columns, float_columns = _REPORT_COLUMNS[self._oracle_name]
        if int_data.shape[1] != int_columns or float_data.shape[1] != float_columns:
            raise AggregationError(
                f"HH/{self._oracle_name} reports must pack "
                f"({int_columns} int, {float_columns} float) columns, got "
                f"({int_data.shape[1]}, {float_data.shape[1]})"
            )
        for index, accumulator in enumerate(self._inner):
            members = levels == index
            if not members.any():
                continue
            accumulator.update(
                _unpack_reports(
                    self._oracle_name, int_data[members], float_data[members]
                )
            )

    def _absorb(self, other: "HeavyHittersAccumulator") -> None:
        for mine, theirs in zip(self._inner, other._inner):
            mine.merge(theirs)

    def _export_state(self):
        state = {}
        for index, accumulator in enumerate(self._inner):
            for key, value in accumulator.state_dict().items():
                state[f"level{index:02d}__{key}"] = value
        return state

    def _import_state(self, state: Mapping[str, object]) -> None:
        remaining = dict(state)
        for index, accumulator in enumerate(self._inner):
            prefix = f"level{index:02d}__"
            inner_state = {}
            for key in list(remaining):
                if key.startswith(prefix):
                    inner_state[key[len(prefix):]] = remaining.pop(key)
            accumulator.load_state(inner_state)
        if remaining:
            raise AggregationError(
                f"accumulator state has unexpected fields "
                f"{sorted(remaining)}"
            )

    def _merge_signature(self):
        return (
            self._oracle_name,
            self._level_bits,
            tuple(accumulator._merge_signature() for accumulator in self._inner),
        )

    def __repr__(self) -> str:
        # The registry name is "HH", not the class-name-derived default.
        return (
            f"{type(self).__name__}(protocol='HH', d={self.domain.dimension}, "
            f"k={self._workload.max_width}, num_reports={self._num_reports})"
        )

    def finalize(self) -> HeavyHitterEstimator:
        self._require_reports()
        distributions = []
        for bits, accumulator in zip(self._level_bits, self._inner):
            if accumulator.num_reports == 0:
                # A level nobody reported to estimates nothing; discovery
                # sees an infinite threshold there and falls back to its
                # keep-the-top rule instead of trusting these zeros.
                distributions.append(np.zeros(1 << bits, dtype=np.float64))
                continue
            estimator = accumulator.finalize()
            full_mask = (1 << bits) - 1
            distributions.append(
                np.asarray(estimator.query(full_mask).values, dtype=np.float64)
            )
        return HeavyHitterEstimator(
            self._workload,
            self._level_bits,
            distributions,
            tuple(accumulator.num_reports for accumulator in self._inner),
            self._config,
        )


class HeavyHitters(MarginalReleaseProtocol):
    """Prefix-tree heavy-hitter discovery as a registry protocol family.

    ``oracle`` picks the per-level frequency oracle (``InpOLH``, ``InpHT``
    or ``InpHTCMS``); ``fanout`` sets how many new prefix bits each level
    adds; ``threshold`` is the pruning bar (``0`` = adaptive, each level
    prunes at its oracle's confidence half-width) and ``top_k`` how many
    hitters :meth:`HeavyHitterEstimator.discover` emits by default.
    ``num_buckets``/``decode_batch_size``/``kernel_backend`` forward to the
    OLH oracle and ``num_hashes``/``width`` to the HCMS sketch, mirroring
    those protocols' own options.
    """

    name = "HH"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        oracle: str = "InpOLH",
        fanout: int = 2,
        threshold: float = 0.0,
        top_k: int = 8,
        num_buckets: int = 0,
        num_hashes: int = 5,
        width: int = 256,
        decode_batch_size: int = 0,
        kernel_backend: str = "",
    ):
        super().__init__(budget, max_width)
        oracle = str(oracle)
        if oracle not in _REPORT_COLUMNS:
            raise ProtocolConfigurationError(
                f"unknown heavy-hitter oracle {oracle!r}; expected one of "
                f"{sorted(_REPORT_COLUMNS)}"
            )
        fanout = int(fanout)
        if fanout < 1:
            raise ProtocolConfigurationError(
                f"level fanout must be >= 1 prefix bit, got {fanout}"
            )
        threshold = float(threshold)
        if not 0.0 <= threshold < 1.0:
            raise ProtocolConfigurationError(
                f"pruning threshold must lie in [0, 1), got {threshold}"
            )
        top_k = int(top_k)
        if top_k < 1:
            raise ProtocolConfigurationError(
                f"top-k must be >= 1, got {top_k}"
            )
        self._oracle_name = oracle
        self._fanout = fanout
        self._threshold = threshold
        self._top_k = top_k
        self._num_buckets = int(num_buckets)
        self._num_hashes = int(num_hashes)
        self._width = int(width)
        self._decode_batch_size = int(decode_batch_size)
        self._kernel_backend = str(kernel_backend)

    def spec_options(self):
        return {
            "oracle": self._oracle_name,
            "fanout": self._fanout,
            "threshold": self._threshold,
            "top_k": self._top_k,
            "num_buckets": self._num_buckets,
            "num_hashes": self._num_hashes,
            "width": self._width,
            "decode_batch_size": self._decode_batch_size,
            "kernel_backend": self._kernel_backend,
        }

    def tuning_options(self):
        # Forwarded verbatim to the OLH decode path; estimates never change.
        return frozenset({"decode_batch_size", "kernel_backend"})

    @property
    def oracle_name(self) -> str:
        return self._oracle_name

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def top_k(self) -> int:
        return self._top_k

    def level_plan(self, dimension: int) -> Tuple[int, ...]:
        """Prefix bits covered by each level: ``min((l+1)*fanout, d)``."""
        if dimension < 1:
            raise ProtocolConfigurationError(
                f"dimension must be >= 1, got {dimension}"
            )
        plan = []
        bits = 0
        while bits < dimension:
            bits = min(bits + self._fanout, dimension)
            plan.append(bits)
        return tuple(plan)

    def discovery_config(self) -> DiscoveryConfig:
        return DiscoveryConfig(
            oracle=self._oracle_name,
            epsilon=self.epsilon,
            fanout=self._fanout,
            threshold=self._threshold,
            top_k=self._top_k,
            num_hashes=self._num_hashes,
            width=self._width,
        )

    def level_protocol(self, bits: int) -> MarginalReleaseProtocol:
        """The inner oracle protocol over a ``bits``-bit prefix domain.

        Built at ``max_width=bits`` so the full prefix joint is answerable
        (for ``InpHT`` that makes the coefficient set complete and the
        reconstruction exact in expectation).
        """
        if self._oracle_name == "InpOLH":
            return InpOLH(
                self.budget,
                bits,
                num_buckets=self._num_buckets,
                decode_batch_size=self._decode_batch_size,
                kernel_backend=self._kernel_backend,
            )
        if self._oracle_name == "InpHT":
            return InpHT(self.budget, bits)
        return InpHTCMS(
            self.budget,
            bits,
            num_hashes=self._num_hashes,
            width=self._width,
        )

    def encode_batch(self, records, rng: RngLike = None) -> HeavyHitterReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        users, dimension = records.shape
        plan = self.level_plan(dimension)
        int_columns, float_columns = _REPORT_COLUMNS[self._oracle_name]
        # One draw partitions the batch across levels, then each level's
        # sub-batch is perturbed in level order with the same generator —
        # a deterministic function of (records, rng state), so every
        # shard/socket/topology invariance the pipeline proves carries over.
        levels = generator.integers(0, len(plan), size=users)
        int_data = np.zeros((users, int_columns), dtype=np.int64)
        float_data = np.zeros((users, float_columns), dtype=np.float64)
        for index, bits in enumerate(plan):
            members = levels == index
            if not members.any():
                continue
            inner = self.level_protocol(bits).encode_batch(
                records[members][:, :bits], rng=generator
            )
            packed_ints, packed_floats = _pack_reports(self._oracle_name, inner)
            int_data[members] = packed_ints
            float_data[members] = packed_floats
        return HeavyHitterReports(
            levels=levels, int_data=int_data, float_data=float_data
        )

    def accumulator(self, domain: Domain) -> HeavyHittersAccumulator:
        workload = self.workload_for(domain)
        plan = self.level_plan(domain.dimension)
        inner = tuple(
            self.level_protocol(bits).accumulator(Domain.binary(bits))
            for bits in plan
        )
        return HeavyHittersAccumulator(
            workload, plan, inner, self._oracle_name, self.discovery_config()
        )

    def communication_bits(self, dimension: int) -> int:
        """The level tag plus the final (widest) level's oracle report."""
        plan = self.level_plan(dimension)
        level_bits = max(1, (len(plan) - 1).bit_length())
        inner = self.level_protocol(plan[-1])
        return level_bits + inner.communication_bits(plan[-1])
