"""Prefix-tree heavy-hitter discovery over per-level frequency estimates.

The :class:`HeavyHitterEstimator` produced by the ``HH`` accumulator carries
one reconstructed prefix distribution per level (level ``l`` covers the
first ``b_l`` record bits, the last level the full domain).  Discovery walks
those levels TreeHist/PEM-style:

1. every cell of the first level's prefix domain is a candidate;
2. candidates whose estimated frequency falls below the level threshold are
   pruned — by default the threshold is the one-sided resolution of the
   level's oracle (the confidence half-width from
   :func:`repro.theory.bounds.frequency_confidence_half_width` at that
   level's population), so pruning only discards prefixes the level cannot
   statistically distinguish from zero;
3. each survivor ``p`` expands into its children ``p | (x << b_l)`` on the
   next level, and the walk repeats;
4. the survivors of the final (full-width) level are ranked by estimated
   frequency and the top ``k`` are emitted with normal confidence
   intervals.

A level whose threshold eliminates every candidate keeps its top ``k``
instead (discovery always returns *something*; the caller sees the
thresholds it ran under in the :class:`DiscoveryResult`).  Because each
heavy hitter is an assignment over all ``d`` binary attributes, the set
bits of its index read directly as a frequent *itemset* — the estimator
also answers itemset-frequency queries for any attribute subset inside the
workload width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import bitops
from ..core.exceptions import ProtocolConfigurationError
from ..core.marginals import MarginalWorkload
from ..protocols.base import DistributionEstimator, as_record_matrix, record_indices
from ..theory.bounds import frequency_confidence_half_width

__all__ = [
    "DiscoveryConfig",
    "HeavyHitter",
    "DiscoveryResult",
    "HeavyHitterEstimator",
    "exact_top_k",
    "precision_recall",
]


@dataclass(frozen=True)
class DiscoveryConfig:
    """The ``HH`` protocol knobs the estimator needs to run discovery.

    ``threshold == 0.0`` means adaptive: each level prunes at its own
    oracle resolution (confidence half-width at that level's population).
    """

    oracle: str
    epsilon: float
    fanout: int
    threshold: float
    top_k: int
    num_hashes: int
    width: int


@dataclass(frozen=True)
class HeavyHitter:
    """One discovered element: a full-domain cell and its frequency."""

    index: int
    #: Names of the attributes set to 1 in ``index`` — the itemset reading.
    attributes: Tuple[str, ...]
    frequency: float
    #: Half-width of the two-sided normal CI on ``frequency``.
    half_width: float


@dataclass(frozen=True)
class DiscoveryResult:
    """Ranked top-k plus the per-level walk that produced it."""

    hitters: Tuple[HeavyHitter, ...]
    level_bits: Tuple[int, ...]
    level_reports: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    candidates_per_level: Tuple[int, ...]
    survivors_per_level: Tuple[int, ...]
    confidence: float

    @property
    def indices(self) -> Tuple[int, ...]:
        """Discovered cell indices, ranked most frequent first."""
        return tuple(hitter.index for hitter in self.hitters)

    def to_dict(self) -> Dict:
        """JSON-ready form (the ``repro hh discover`` payload)."""
        return {
            "hitters": [
                {
                    "index": hitter.index,
                    "attributes": list(hitter.attributes),
                    "frequency": hitter.frequency,
                    "half_width": hitter.half_width,
                }
                for hitter in self.hitters
            ],
            "level_bits": list(self.level_bits),
            "level_reports": list(self.level_reports),
            "thresholds": [float(value) for value in self.thresholds],
            "candidates_per_level": list(self.candidates_per_level),
            "survivors_per_level": list(self.survivors_per_level),
            "confidence": self.confidence,
        }


def exact_top_k(records, k: int) -> Tuple[int, ...]:
    """The true top-``k`` cells of a dataset, ranked by (-count, index).

    The ground truth against which discovery precision/recall is scored in
    the benchmark harness and the CI smoke job.
    """
    if k < 1:
        raise ProtocolConfigurationError(f"top-k must be >= 1, got {k}")
    matrix = as_record_matrix(records)
    counts = np.bincount(record_indices(matrix), minlength=1 << matrix.shape[1])
    order = np.lexsort((np.arange(counts.size), -counts))
    return tuple(int(index) for index in order[:k])


def precision_recall(
    discovered: Iterable[int], exact: Iterable[int]
) -> Tuple[float, float]:
    """Set precision/recall of discovered indices against the exact top-k."""
    found = set(int(index) for index in discovered)
    truth = set(int(index) for index in exact)
    if not found or not truth:
        return 0.0, 0.0
    hits = len(found & truth)
    return hits / len(found), hits / len(truth)


class HeavyHitterEstimator(DistributionEstimator):
    """Marginal estimator plus level-wise prefix discovery.

    Behaves exactly like a :class:`DistributionEstimator` over the final
    level's full-domain distribution (so every generic marginal query,
    session and topology path treats ``HH`` like any other protocol) and
    additionally exposes :meth:`discover` over the per-level prefix
    distributions.
    """

    def __init__(
        self,
        workload: MarginalWorkload,
        level_bits: Sequence[int],
        level_distributions: Sequence[np.ndarray],
        level_reports: Sequence[int],
        config: DiscoveryConfig,
    ):
        level_bits = tuple(int(bits) for bits in level_bits)
        distributions = tuple(
            np.asarray(values, dtype=np.float64) for values in level_distributions
        )
        if len(distributions) != len(level_bits):
            raise ProtocolConfigurationError(
                f"{len(level_bits)} levels but {len(distributions)} "
                f"distributions"
            )
        for bits, values in zip(level_bits, distributions):
            if values.shape != (1 << bits,):
                raise ProtocolConfigurationError(
                    f"level with {bits} prefix bits needs {1 << bits} cells, "
                    f"got shape {values.shape}"
                )
        super().__init__(workload, distributions[-1])
        self._level_bits = level_bits
        self._level_distributions = distributions
        self._level_reports = tuple(int(count) for count in level_reports)
        self._config = config

    @property
    def level_bits(self) -> Tuple[int, ...]:
        """Prefix bits covered by each level (the last equals ``d``)."""
        return self._level_bits

    @property
    def level_reports(self) -> Tuple[int, ...]:
        """Reports folded into each level (the user partition sizes)."""
        return self._level_reports

    @property
    def level_distributions(self) -> Tuple[np.ndarray, ...]:
        """Reconstructed prefix distribution of each level."""
        return self._level_distributions

    @property
    def config(self) -> DiscoveryConfig:
        return self._config

    def _level_half_width(
        self, level: int, confidence: float
    ) -> float:
        return frequency_confidence_half_width(
            self._config.oracle,
            self._config.epsilon,
            self._level_reports[level],
            1 << self._level_bits[level],
            confidence=confidence,
            num_hashes=self._config.num_hashes,
            width=self._config.width,
        )

    def discover(
        self,
        top_k: Optional[int] = None,
        threshold: Optional[float] = None,
        confidence: float = 0.95,
    ) -> DiscoveryResult:
        """Walk the prefix levels and return the ranked top-k.

        ``threshold`` overrides the protocol's pruning threshold for every
        level; ``None`` keeps the configured one (adaptive per level when
        the protocol was built with ``threshold=0``).
        """
        keep = int(top_k) if top_k is not None else self._config.top_k
        if keep < 1:
            raise ProtocolConfigurationError(f"top-k must be >= 1, got {keep}")
        fixed = float(threshold) if threshold is not None else self._config.threshold
        if fixed < 0:
            raise ProtocolConfigurationError(
                f"pruning threshold must be >= 0, got {fixed}"
            )

        thresholds: List[float] = []
        candidate_counts: List[int] = []
        survivor_counts: List[int] = []
        candidates = np.arange(1 << self._level_bits[0], dtype=np.int64)
        for level, bits in enumerate(self._level_bits):
            candidate_counts.append(int(candidates.size))
            cut = fixed if fixed > 0 else self._level_half_width(level, confidence)
            thresholds.append(float(cut))
            frequencies = self._level_distributions[level][candidates]
            survivors = candidates[frequencies >= cut]
            if survivors.size == 0:
                # Nothing clears the bar (tiny level population or a harsh
                # manual threshold): keep the level's best ``keep`` prefixes
                # so discovery still emits a ranked answer.
                order = np.lexsort((candidates, -frequencies))
                survivors = np.sort(candidates[order[:keep]])
            survivor_counts.append(int(survivors.size))
            if level + 1 < len(self._level_bits):
                extension_bits = self._level_bits[level + 1] - bits
                extensions = np.arange(1 << extension_bits, dtype=np.int64)
                candidates = (
                    survivors[:, None] | (extensions[None, :] << bits)
                ).reshape(-1)
            else:
                candidates = survivors

        final = self._level_distributions[-1]
        frequencies = final[candidates]
        order = np.lexsort((candidates, -frequencies))
        chosen = candidates[order[:keep]]
        half_width = self._level_half_width(len(self._level_bits) - 1, confidence)
        hitters = tuple(
            HeavyHitter(
                index=int(index),
                attributes=tuple(self.domain.names_of(int(index))),
                frequency=float(final[index]),
                half_width=float(half_width),
            )
            for index in chosen
        )
        return DiscoveryResult(
            hitters=hitters,
            level_bits=self._level_bits,
            level_reports=self._level_reports,
            thresholds=tuple(thresholds),
            candidates_per_level=tuple(candidate_counts),
            survivors_per_level=tuple(survivor_counts),
            confidence=float(confidence),
        )

    def itemset_frequency(self, attributes) -> float:
        """Estimated frequency of the itemset "all of ``attributes`` are 1".

        ``attributes`` is anything :meth:`Domain.mask_of` accepts (names or
        a mask) of width at most the workload's ``k``; the all-ones cell of
        that marginal is exactly the itemset frequency.
        """
        mask = self.domain.mask_of(attributes)
        return float(self.query(mask).values[-1])

    def frequent_itemsets(
        self, min_frequency: float, max_size: Optional[int] = None
    ) -> List[Tuple[Tuple[str, ...], float]]:
        """All attribute subsets whose all-ones frequency clears a bar.

        Enumerates every workload marginal of width at most ``max_size``
        (default: the workload width) and keeps the itemsets with estimated
        frequency at least ``min_frequency``, sorted most frequent first.
        """
        limit = self.workload.max_width if max_size is None else int(max_size)
        if not 1 <= limit <= self.workload.max_width:
            raise ProtocolConfigurationError(
                f"itemset size must lie in [1, {self.workload.max_width}], "
                f"got {limit}"
            )
        found: List[Tuple[Tuple[str, ...], float]] = []
        for beta in self.workload.marginals():
            if bitops.popcount(beta) > limit:
                continue
            frequency = self.itemset_frequency(beta)
            if frequency >= min_frequency:
                found.append((tuple(self.domain.names_of(beta)), frequency))
        found.sort(key=lambda item: (-item[1], item[0]))
        return found
