"""A whole local collection tree in one object, plus its on-disk manifest.

:class:`LocalTopology` wires the pieces together: a
:class:`~.supervisor.TopologySupervisor` running N durable collector
processes, a :class:`~.supervisor.SupervisorEndpoint` exposing the
failover oracle on a socket, and a ``topology.json`` manifest so that
*other* processes (``repro load --topology``, ``repro topo inspect``)
can find every address and the collection contract without sharing
memory with the launcher.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.domain import Domain
from ..core.exceptions import CollectionServiceError, ProtocolConfigurationError
from ..resilience.policies import ResilienceConfig
from ..service.spec import ProtocolSpec
from .aggregator import FanInAggregator
from .router import ROUTING_POLICIES
from .supervisor import SupervisorEndpoint, TopologySupervisor

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_FORMAT_VERSION",
    "LocalTopology",
    "load_manifest",
    "wait_for_manifest",
]

PathLike = Union[str, Path]

MANIFEST_FILENAME = "topology.json"
MANIFEST_FORMAT_VERSION = 1


class LocalTopology:
    """Supervisor + wire oracle + manifest for one local collection tree."""

    def __init__(
        self,
        spec,
        domain: Domain,
        *,
        base_dir: PathLike,
        collectors: int = 3,
        shards: int = 1,
        routing: str = "round-robin",
        host: str = "127.0.0.1",
        checkpoint_interval: Optional[float] = None,
        start_timeout: float = 30.0,
        resilience: Optional[ResilienceConfig] = None,
    ):
        if routing not in ROUTING_POLICIES:
            raise ProtocolConfigurationError(
                f"unknown routing policy {routing!r}; expected one of "
                f"{list(ROUTING_POLICIES)}"
            )
        if resilience is not None and not isinstance(
            resilience, ResilienceConfig
        ):
            raise ProtocolConfigurationError(
                f"resilience must be a ResilienceConfig, "
                f"got {type(resilience).__name__}"
            )
        self._routing = routing
        self._resilience = resilience
        self._base_dir = Path(base_dir)
        self._supervisor = TopologySupervisor(
            spec,
            domain,
            collectors=collectors,
            base_dir=self._base_dir,
            host=host,
            shards=shards,
            checkpoint_interval=checkpoint_interval,
            start_timeout=start_timeout,
        )
        self._endpoint = SupervisorEndpoint(self._supervisor, host=host)
        self._started = False

    # ------------------------------------------------------------------ #

    @property
    def supervisor(self) -> TopologySupervisor:
        return self._supervisor

    @property
    def endpoint(self) -> SupervisorEndpoint:
        return self._endpoint

    @property
    def routing(self) -> str:
        return self._routing

    @property
    def resilience(self) -> Optional[ResilienceConfig]:
        """The retry/timeout/breaker policies published in the manifest."""
        return self._resilience

    @property
    def base_dir(self) -> Path:
        return self._base_dir

    @property
    def manifest_path(self) -> Path:
        return self._base_dir / MANIFEST_FILENAME

    @property
    def addresses(self):
        return self._supervisor.addresses

    # ------------------------------------------------------------------ #

    async def start(self) -> "LocalTopology":
        """Spawn the collectors, open the oracle, write the manifest."""
        if self._started:
            raise ProtocolConfigurationError(
                "the topology is already started"
            )
        self._base_dir.mkdir(parents=True, exist_ok=True)
        self._supervisor.start()
        await self._endpoint.start()
        self.write_manifest()
        self._started = True
        return self

    def write_manifest(self) -> Path:
        supervisor = self._supervisor
        manifest = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "spec": supervisor.spec.to_dict(),
            "attributes": list(supervisor.domain.attributes),
            "routing": self._routing,
            "supervisor": {
                "host": self._endpoint.host,
                "port": self._endpoint.port,
            },
            "collectors": supervisor.describe(),
        }
        if self._resilience is not None:
            # Published so `repro load --topology` clients pick up the
            # tree's retry/timeout/breaker policies without extra flags.
            manifest["resilience"] = self._resilience.to_dict()
        path = self.manifest_path
        # Write-then-rename so a concurrently launched `repro load
        # --topology` never reads a half-written manifest.
        scratch = path.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        scratch.replace(path)
        return path

    async def collect(self, *, timeout: float = 15.0) -> FanInAggregator:
        """Fan in: live collectors over the wire, dead ones from disk."""
        return await self._supervisor.collect(timeout=timeout)

    async def stop(self) -> None:
        await self._endpoint.stop()
        self._supervisor.shutdown()


# ---------------------------------------------------------------------- #
# manifest readers (the cross-process side)


def load_manifest(directory: PathLike) -> Dict[str, Any]:
    """Read and validate a ``topology.json`` written by `repro topo`."""
    directory = Path(directory)
    path = (
        directory / MANIFEST_FILENAME
        if directory.is_dir() or directory.suffix != ".json"
        else directory
    )
    if not path.exists():
        raise CollectionServiceError(
            f"no topology manifest at {path}; launch one first with "
            f"`repro topo launch --dir {directory}`"
        )
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise CollectionServiceError(
            f"cannot read topology manifest {path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise CollectionServiceError(
            f"topology manifest {path} is not a JSON object"
        )
    version = manifest.get("format_version")
    if version != MANIFEST_FORMAT_VERSION:
        raise CollectionServiceError(
            f"topology manifest {path} has format_version {version!r}; "
            f"this build reads version {MANIFEST_FORMAT_VERSION}"
        )
    for key in ("spec", "attributes", "routing", "collectors"):
        if key not in manifest:
            raise CollectionServiceError(
                f"topology manifest {path} is missing the {key!r} field"
            )
    # Fail here, not deep inside a client, if the contract is garbage.
    ProtocolSpec.from_dict(manifest["spec"])
    return manifest


def wait_for_manifest(
    directory: PathLike, *, timeout: float = 30.0, poll: float = 0.1
) -> Dict[str, Any]:
    """Poll for a manifest — lets a load generator start before (or while)
    `repro topo launch` is still binding its collectors."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return load_manifest(directory)
        except CollectionServiceError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(poll)
