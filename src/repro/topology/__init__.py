"""Multi-collector fan-in topology over the merge algebra.

The pieces, bottom-up:

* :mod:`~repro.topology.router` — client routing across front-line
  collectors (round-robin or consistent hashing), with dead-collector
  eviction.
* :mod:`~repro.topology.pull` — the ``PULL``/``STATE`` wire client that
  snapshots a collector's merged session without consuming it.
* :mod:`~repro.topology.aggregator` — :class:`FanInAggregator`, one
  snapshot per collector id, merged exactly by the accumulator algebra.
* :mod:`~repro.topology.supervisor` — :class:`TopologySupervisor` spawns
  and health-checks durable collector processes, recovers the last atomic
  checkpoint of a dead one, and answers the failover oracle (also on a
  socket via :class:`SupervisorEndpoint`).
* :mod:`~repro.topology.tree` — :class:`LocalTopology` glues it all
  together and writes the ``topology.json`` manifest other processes use
  to join the tree.

The load generator (:mod:`repro.server.loadgen`) plugs into this layer
through plain parameters — ``targets``, ``routing``, ``failover`` — so
`repro load` can drive a whole tree through one router.
"""

from .aggregator import FanInAggregator
from .pull import PulledState, pull_state, pull_stats
from .router import (
    ROUTING_POLICIES,
    ConsistentHashRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from .supervisor import CollectorHandle, SupervisorEndpoint, TopologySupervisor
from .tree import (
    MANIFEST_FILENAME,
    LocalTopology,
    load_manifest,
    wait_for_manifest,
)

__all__ = [
    "FanInAggregator",
    "PulledState",
    "pull_state",
    "pull_stats",
    "ROUTING_POLICIES",
    "ConsistentHashRouter",
    "RoundRobinRouter",
    "Router",
    "make_router",
    "CollectorHandle",
    "SupervisorEndpoint",
    "TopologySupervisor",
    "MANIFEST_FILENAME",
    "LocalTopology",
    "load_manifest",
    "wait_for_manifest",
]
