"""The collector supervisor: spawn, health-check, recover, re-merge.

:class:`TopologySupervisor` runs N front-line :class:`CollectionServer`
processes in ``durable_acks`` mode (one directory and one stable
``collector_id`` each), watches their liveness, and — when one dies —
recovers its last atomic ``state.npz`` checkpoint so the tree re-merges
without losing a single acknowledged report:

* the collector checkpoints *before* every ACK, so its last ``state.npz``
  is a superset of its acknowledged groups;
* :meth:`health_check` notices the death and loads that checkpoint into
  the recovered set (keyed by collector id, so a later restart supersedes
  it);
* clients that lost a connection mid-group consult the supervisor's
  :meth:`failover` oracle: a group whose token is in the recovered set is
  already counted (no replay — replaying would double-count); any other
  group is replayed to a surviving collector, which has never seen its
  token.

:class:`SupervisorEndpoint` exposes that oracle over the wire (the same
``PULL``/``STATE`` frames the collectors speak) so an out-of-process load
generator — ``repro load --topology`` — can fail over identically.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.domain import Domain
from ..core.exceptions import (
    CollectionServiceError,
    ProtocolConfigurationError,
    WireFormatError,
)
from ..resilience.coverage import (
    STATUS_LOST,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RECOVERED,
    CollectorCoverage,
    CoverageReport,
)
from ..resilience.defaults import WATCH_INTERVAL_SECONDS
from ..resilience.integrity import quarantine_checkpoint
from ..server.framing import (
    ERR,
    PULL,
    STATE,
    ControlMessage,
    FrameDecoder,
    encode_control,
)
from ..server.server import DURABLE_STATE_FILENAME, CollectionServer
from ..service.session import AggregationSession
from ..service.spec import ProtocolSpec
from .aggregator import FanInAggregator
from .pull import PulledState

__all__ = ["CollectorHandle", "TopologySupervisor", "SupervisorEndpoint"]

_logger = logging.getLogger(__name__)

PathLike = Union[str, Path]


def _collector_main(
    collector_id: str,
    spec_dict: dict,
    attributes: list,
    config: dict,
    port_value,
    ready_event,
    stop_event,
) -> None:
    """One front-line collector process: bind, serve durably, exit.

    Top-level (not a closure) so every multiprocessing start method can
    pickle it; all coordination state comes in as arguments.  The bound
    port is reported back through ``port_value`` before ``ready_event``
    fires.
    """
    spec = ProtocolSpec.from_dict(spec_dict)
    domain = Domain(attributes)

    async def main() -> None:
        server = CollectionServer(
            spec,
            domain,
            host=config["host"],
            port=config["port"],
            shards=config["shards"],
            checkpoint_dir=config["checkpoint_dir"],
            checkpoint_interval=config.get("checkpoint_interval"),
            durable_acks=True,
            collector_id=collector_id,
        )
        await server.start()
        port_value.value = server.port
        ready_event.set()

        async def watch() -> None:
            while not stop_event.is_set():
                await asyncio.sleep(WATCH_INTERVAL_SECONDS)
            server.request_stop()

        watcher = asyncio.create_task(watch())
        try:
            await server.serve_until_stopped()
        finally:
            watcher.cancel()
            try:
                await watcher
            except asyncio.CancelledError:
                pass

    asyncio.run(main())


@dataclass
class CollectorHandle:
    """Supervisor-side bookkeeping for one front-line collector."""

    index: int
    collector_id: str
    checkpoint_dir: Path
    process: Any = None
    stop_event: Any = None
    port: Optional[int] = None
    status: str = "new"  # new -> live -> dead (or stopped); restart -> live
    generation: int = 0

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return None if self.port is None else (self.host, self.port)

    host: str = "127.0.0.1"

    def describe(self) -> Dict[str, Any]:
        return {
            "collector_id": self.collector_id,
            "host": self.host,
            "port": self.port,
            "pid": self.process.pid if self.process is not None else None,
            "status": self.status,
            "generation": self.generation,
            "checkpoint_dir": str(self.checkpoint_dir),
        }


class TopologySupervisor:
    """Spawn and supervise N durable collectors; recover the dead ones.

    Parameters
    ----------
    spec, domain:
        The collection contract, as everywhere else.
    collectors:
        How many front-line collector processes to run.
    base_dir:
        Every collector checkpoints under ``base_dir/<collector_id>/``.
    shards:
        Shard sessions *inside* each collector.
    checkpoint_interval:
        Periodic ``state.npz`` refresh inside each collector, on top of
        the per-ACK transactional writes.
    """

    def __init__(
        self,
        spec,
        domain: Domain,
        *,
        collectors: int = 3,
        base_dir: PathLike,
        host: str = "127.0.0.1",
        shards: int = 1,
        checkpoint_interval: Optional[float] = None,
        start_timeout: float = 30.0,
    ):
        if collectors < 1:
            raise ProtocolConfigurationError(
                f"collector count must be >= 1, got {collectors}"
            )
        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_protocol(spec)
        if not isinstance(domain, Domain):
            raise ProtocolConfigurationError(
                f"a TopologySupervisor needs a Domain, "
                f"got {type(domain).__name__}"
            )
        self._spec = spec
        self._domain = domain
        self._host = host
        self._shards = int(shards)
        self._checkpoint_interval = checkpoint_interval
        self._start_timeout = float(start_timeout)
        self._base_dir = Path(base_dir)
        self._context = multiprocessing.get_context()
        self._handles = [
            CollectorHandle(
                index=index,
                collector_id=f"c{index}",
                checkpoint_dir=self._base_dir / f"c{index}",
                host=host,
            )
            for index in range(collectors)
        ]
        self._recovered: Dict[str, PulledState] = {}
        # Collectors whose durable state could NOT be recovered, with the
        # human-readable reason — "no durable state" or "quarantined: ..."
        # — feeding straight into finalize's CoverageReport.
        self._lost: Dict[str, str] = {}
        # health_check runs in worker threads on the async paths (the
        # checkpoint restore is synchronous disk I/O); the lock keeps two
        # concurrent checks from recovering the same collector twice.
        self._health_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def handles(self) -> Tuple[CollectorHandle, ...]:
        return tuple(self._handles)

    @property
    def addresses(self) -> Tuple[Tuple[str, int], ...]:
        """Every collector's address (fixed across restarts)."""
        return tuple(handle.address for handle in self._handles)

    @property
    def dead_addresses(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            handle.address
            for handle in self._handles
            if handle.status == "dead"
        )

    def describe(self) -> List[Dict[str, Any]]:
        return [handle.describe() for handle in self._handles]

    def is_alive(self, index: int) -> bool:
        handle = self._handles[index]
        return handle.process is not None and handle.process.is_alive()

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "TopologySupervisor":
        """Spawn every collector; returns once all accept connections."""
        if any(handle.status != "new" for handle in self._handles):
            raise ProtocolConfigurationError(
                "the supervisor is already started"
            )
        for handle in self._handles:
            self._spawn(handle)
        self._await_ready(self._handles)
        return self

    def _spawn(self, handle: CollectorHandle) -> None:
        handle.stop_event = self._context.Event()
        handle._ready_event = self._context.Event()
        handle._port_value = self._context.Value("i", handle.port or 0)
        config = {
            "host": self._host,
            # A restarted collector rebinds its original port so its
            # address — what routers and manifests carry — stays stable.
            "port": handle.port or 0,
            "shards": self._shards,
            "checkpoint_dir": str(handle.checkpoint_dir),
            "checkpoint_interval": self._checkpoint_interval,
        }
        handle.process = self._context.Process(
            target=_collector_main,
            args=(
                handle.collector_id,
                self._spec.to_dict(),
                list(self._domain.attributes),
                config,
                handle._port_value,
                handle._ready_event,
                handle.stop_event,
            ),
            daemon=True,
        )
        handle.process.start()
        handle.generation += 1

    def _await_ready(self, handles) -> None:
        for handle in handles:
            if not handle._ready_event.wait(self._start_timeout):
                self.shutdown()
                raise CollectionServiceError(
                    f"collector {handle.collector_id} did not come up within "
                    f"{self._start_timeout:.1f}s"
                )
            handle.port = int(handle._port_value.value)
            handle.status = "live"
            _logger.info(
                "collector %s (pid %d) serving on %s:%d",
                handle.collector_id,
                handle.process.pid,
                handle.host,
                handle.port,
            )

    def kill(self, index: int) -> CollectorHandle:
        """SIGKILL one collector (fault injection); health checks will
        notice the death and recover its checkpoint."""
        handle = self._handles[index]
        if handle.process is None:
            raise ProtocolConfigurationError(
                f"collector {handle.collector_id} was never started"
            )
        handle.process.kill()
        handle.process.join(timeout=5.0)
        return handle

    def restart(self, index: int) -> CollectorHandle:
        """Relaunch a dead collector on its original port and directory.

        The child resumes from its own ``state.npz`` (the durable-ACK
        restore path), so its live state supersedes — and therefore
        replaces — the supervisor's recovered snapshot for it.
        """
        handle = self._handles[index]
        if handle.process is not None and handle.process.is_alive():
            raise ProtocolConfigurationError(
                f"collector {handle.collector_id} is still alive"
            )
        self._spawn(handle)
        self._await_ready([handle])
        # The restarted collector now owns every report its checkpoint
        # held; keeping the recovered copy would double-count on merge.
        self._recovered.pop(handle.collector_id, None)
        self._lost.pop(handle.collector_id, None)
        return handle

    def stop_collector(self, index: int) -> None:
        """Graceful stop: the collector drains, checkpoints and exits."""
        handle = self._handles[index]
        if handle.stop_event is not None:
            handle.stop_event.set()

    def shutdown(self, timeout: float = 15.0) -> None:
        """Stop every live collector and reap every process."""
        for handle in self._handles:
            if handle.stop_event is not None:
                handle.stop_event.set()
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            if handle.status == "live":
                handle.status = "stopped"

    # ------------------------------------------------------------------ #
    # failure detection and recovery

    def health_check(self) -> List[CollectorHandle]:
        """Mark collectors whose process died; recover their checkpoints.

        Returns the newly-dead handles.  Recovery is ordered *before* the
        handle is declared dead, so any client that observes ``dead`` in a
        :meth:`failover` verdict can rely on the recovered token set being
        complete.
        """
        newly_dead = []
        with self._health_lock:
            for handle in self._handles:
                if handle.status != "live":
                    continue
                if handle.process is not None and handle.process.is_alive():
                    continue
                self._recover(handle)
                handle.status = "dead"
                newly_dead.append(handle)
                _logger.warning(
                    "collector %s (%s:%s) died; recovered %d report(s) from "
                    "its last durable checkpoint",
                    handle.collector_id,
                    handle.host,
                    handle.port,
                    self._recovered[handle.collector_id].num_reports,
                )
        return newly_dead

    async def health_check_async(self) -> List[CollectorHandle]:
        """:meth:`health_check` off the event loop.

        Recovering a dead collector restores its ``state.npz`` with
        synchronous numpy/zip file I/O, so the async paths (the failover
        oracle, the wire endpoint, :meth:`collect`) run the check in a
        worker thread — a client mid-failover never waits behind another
        client's disk read.
        """
        return await asyncio.to_thread(self.health_check)

    def _recover(self, handle: CollectorHandle) -> None:
        state_path = handle.checkpoint_dir / DURABLE_STATE_FILENAME
        tokens: Dict[str, Dict[str, int]] = {}
        session: Optional[AggregationSession] = None
        if not state_path.exists():
            # Death before the first durable checkpoint: nothing was ever
            # acknowledged, so an empty recovered state loses nothing.
            found = (
                sorted(
                    entry.name for entry in handle.checkpoint_dir.iterdir()
                )
                if handle.checkpoint_dir.is_dir()
                else []
            )
            _logger.warning(
                "collector %s left no %s (found: %s); recovering as empty",
                handle.collector_id,
                DURABLE_STATE_FILENAME,
                found if found else "no checkpoint directory",
            )
            self._lost[handle.collector_id] = (
                f"no durable {DURABLE_STATE_FILENAME} "
                f"(died before its first acknowledged group)"
            )
        else:
            try:
                session = AggregationSession.restore(state_path)
            except WireFormatError as error:
                # Covers zero-byte files, torn zips, and integrity-digest
                # mismatches (CheckpointIntegrityError subclasses
                # WireFormatError): quarantine and recover as empty.  The
                # empty token set makes clients replay every group the
                # quarantined state held, so the loss is repaired wherever
                # the clients are still alive to replay.
                moved, report = quarantine_checkpoint(
                    state_path,
                    f"recovery of dead collector {handle.collector_id} "
                    f"failed: {error}",
                )
                _logger.error(
                    "collector %s left a corrupt %s (%s); quarantined to "
                    "%s (report: %s); recovering as empty",
                    handle.collector_id,
                    DURABLE_STATE_FILENAME,
                    error,
                    moved,
                    report,
                )
                self._lost[handle.collector_id] = (
                    f"checkpoint quarantined: {error}"
                )
            else:
                raw = session.checkpoint_extra.get("acked_tokens", {})
                tokens = (
                    {str(key): dict(value) for key, value in raw.items()}
                    if isinstance(raw, dict)
                    else {}
                )
        if session is None:
            session = AggregationSession(self._spec, self._domain)
        self._recovered[handle.collector_id] = PulledState(
            collector_id=handle.collector_id,
            session=session,
            acked_tokens=tokens,
        )

    def recovered_states(self) -> Dict[str, PulledState]:
        """The recovered snapshots of currently-dead collectors, by id."""
        return dict(self._recovered)

    def recovered_tokens(self) -> Dict[str, Dict[str, int]]:
        """Acknowledged-group tokens across every recovered collector."""
        union: Dict[str, Dict[str, int]] = {}
        for state in self._recovered.values():
            for token, counts in state.acked_tokens.items():
                union[token] = dict(counts)
        return union

    async def failover(self, address) -> Dict[str, Any]:
        """The failover oracle clients consult after a broken connection.

        Returns ``{"dead": bool, "acked_tokens": {...}}``.  ``dead`` is
        True only once the collector at ``address`` has been declared dead
        *and its checkpoint recovered* — at that point ``acked_tokens`` is
        the complete set of groups that must NOT be replayed.  A client
        seeing ``dead: False`` should retry the same address (transient
        failure, or the death simply has not been detected yet) and ask
        again.
        """
        address = (str(address[0]), int(address[1]))
        await self.health_check_async()
        dead = any(
            handle.address == address and handle.status == "dead"
            for handle in self._handles
        )
        verdict: Dict[str, Any] = {"dead": dead}
        if dead:
            verdict["acked_tokens"] = self.recovered_tokens()
        return verdict

    # ------------------------------------------------------------------ #
    # fan-in

    def lost_collectors(self) -> Dict[str, str]:
        """Dead collectors whose durable state could not be recovered
        (recovered-as-empty or quarantined), with the readable reason."""
        return dict(self._lost)

    async def collect(
        self, *, timeout: float = 15.0, retry=None
    ) -> FanInAggregator:
        """Pull every live collector's state, add the recovered dead ones.

        The returned :class:`FanInAggregator` holds exactly one snapshot
        per collector id — live snapshots win over recovered ones — so
        :meth:`FanInAggregator.merged_session` counts every acknowledged
        report exactly once.  ``retry`` is an optional
        :class:`~repro.resilience.RetryPolicy` for the (idempotent) pulls.
        """
        await self.health_check_async()
        aggregator = FanInAggregator(self._spec, self._domain)
        live = [
            handle for handle in self._handles if handle.status == "live"
        ]
        results = await asyncio.gather(
            *(
                aggregator.pull(
                    handle.host, handle.port, timeout=timeout, retry=retry
                )
                for handle in live
            ),
            return_exceptions=True,
        )
        for handle, result in zip(live, results):
            if isinstance(result, BaseException):
                raise CollectionServiceError(
                    f"cannot pull state from live collector "
                    f"{handle.collector_id} ({handle.host}:{handle.port}): "
                    f"{result}"
                ) from result
        for collector_id, state in self._recovered.items():
            if collector_id not in aggregator.collector_ids:
                aggregator.ingest(state)
        return aggregator

    def coverage_report(
        self,
        aggregator: FanInAggregator,
        expected_by_address: Optional[Dict[str, Any]] = None,
    ) -> CoverageReport:
        """Build the finalize ledger from supervisor knowledge.

        ``expected_by_address`` maps ``"host:port"`` strings to
        acknowledged report counts — either plain ints, or the
        ``{"frames", "reports", "groups"}`` counters a
        :class:`~repro.server.LoadReport` records in ``acked_by_target``
        (so ``report.acked_by_target`` can be passed verbatim); they are
        translated to collector ids here.  Status per collector: ``ok``
        while live, ``recovered`` when dead but restored from durable
        state, ``lost``/``quarantined`` when its state is gone.
        """
        expected: Dict[str, int] = {}
        for handle in self._handles:
            key = f"{handle.host}:{handle.port}"
            if expected_by_address and key in expected_by_address:
                counts = expected_by_address[key]
                if isinstance(counts, dict):
                    counts = counts.get("reports", 0)
                expected[handle.collector_id] = int(counts)
        received = aggregator.reports_by_collector()
        report = CoverageReport()
        for handle in self._handles:
            collector_id = handle.collector_id
            if collector_id in self._lost:
                detail = self._lost[collector_id]
                status = (
                    STATUS_QUARANTINED
                    if detail.startswith("checkpoint quarantined")
                    else STATUS_LOST
                )
            elif handle.status == "dead":
                status, detail = STATUS_RECOVERED, "merged from durable state"
            else:
                status, detail = STATUS_OK, ""
            report.add(
                CollectorCoverage(
                    collector_id=collector_id,
                    expected=expected.get(collector_id),
                    received=received.get(collector_id, 0),
                    status=status,
                    detail=detail,
                )
            )
        return report

    async def finalize(
        self,
        *,
        allow_partial: bool = False,
        expected_by_address: Optional[Dict[str, int]] = None,
        timeout: float = 15.0,
        retry=None,
    ):
        """Collect the whole tree and finalize with coverage accounting.

        Strict by default: any collector whose reports are known (or
        expected) to be missing raises
        :class:`~repro.core.exceptions.PartialCoverageError` carrying the
        :class:`~repro.resilience.CoverageReport`; ``allow_partial=True``
        returns the estimator anyway with the report in its metadata.
        """
        aggregator = await self.collect(timeout=timeout, retry=retry)
        coverage = self.coverage_report(
            aggregator, expected_by_address=expected_by_address
        )
        return aggregator.finalize(
            allow_partial=allow_partial, coverage=coverage
        )


class SupervisorEndpoint:
    """The supervisor's failover oracle on a socket (PULL/STATE frames).

    Verbs (the ``what`` field of a ``PULL``):

    * ``recovered`` — ``STATE {dead: ["host:port", ...], acked_tokens}``;
      runs a health check first, so polling clients converge on the
      complete recovered token set.
    * ``stats`` — a cheap supervisor-level summary (per-collector status).
    """

    def __init__(
        self,
        supervisor: TopologySupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._supervisor = supervisor
        self._host = host
        self._requested_port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> Optional[int]:
        return self._port

    async def start(self) -> "SupervisorEndpoint":
        if self._server is not None:
            raise ProtocolConfigurationError("the endpoint is already started")
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _on_client(self, reader, writer) -> None:
        try:
            decoder = FrameDecoder()
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    return
                decoder.absorb(chunk)
                for item in decoder.frames():
                    if (
                        not isinstance(item, ControlMessage)
                        or item.kind != PULL
                    ):
                        writer.write(
                            encode_control(
                                ERR,
                                {"error": "the supervisor only answers PULL"},
                            )
                        )
                        await writer.drain()
                        return
                    writer.write(await self._answer(item.payload))
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        except Exception:  # pragma: no cover - last-resort guard
            _logger.exception("supervisor endpoint handler crashed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _answer(self, payload: Dict[str, Any]) -> bytes:
        what = payload.get("what", "recovered")
        if what == "recovered":
            await self._supervisor.health_check_async()
            return encode_control(
                STATE,
                {
                    "what": "recovered",
                    "dead": [
                        f"{host}:{port}"
                        for host, port in self._supervisor.dead_addresses
                    ],
                    "acked_tokens": self._supervisor.recovered_tokens(),
                },
            )
        if what == "stats":
            await self._supervisor.health_check_async()
            return encode_control(
                STATE,
                {
                    "what": "stats",
                    "collectors": self._supervisor.describe(),
                },
            )
        return encode_control(
            ERR,
            {
                "error": (
                    f"unknown PULL target {what!r}; the supervisor answers "
                    "'recovered' and 'stats'"
                )
            },
        )
