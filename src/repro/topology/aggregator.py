"""The fan-in tier: merge per-collector snapshots into one session.

:class:`FanInAggregator` holds at most one :class:`~.pull.PulledState` per
collector id — ingesting is *last-write-wins*, so duplicated pulls are
harmless (a later snapshot of the same collector is a superset of the
earlier one) and dropped pulls are repaired by simply pulling again.  The
final :meth:`merged_session` runs the exact
:meth:`~repro.service.AggregationSession.merge` algebra over whatever
snapshots are held, which is why the tree finalizes bit-for-bit identical
to a flat ``run_streaming`` no matter how clients were routed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.domain import Domain
from ..core.exceptions import CollectionServiceError
from ..service.session import AggregationSession
from ..service.spec import ProtocolSpec
from .pull import PulledState, pull_state

__all__ = ["FanInAggregator"]


class FanInAggregator:
    """Collect per-collector state snapshots and merge them exactly."""

    def __init__(self, spec, domain: Domain):
        # Borrow AggregationSession's spec/domain validation.
        template = AggregationSession(spec, domain)
        self._spec: ProtocolSpec = template.spec
        self._domain = domain
        self._states: Dict[str, PulledState] = {}

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def collector_ids(self) -> Tuple[str, ...]:
        """Collectors with an ingested snapshot (sorted)."""
        return tuple(sorted(self._states))

    @property
    def num_reports(self) -> int:
        """Reports across every held snapshot (each collector once)."""
        return sum(state.num_reports for state in self._states.values())

    def ingest(self, state: PulledState) -> "FanInAggregator":
        """Hold one collector's snapshot; idempotent per collector id.

        A snapshot of an already-seen collector *replaces* the previous
        one: collector state only grows, so the newest snapshot supersedes
        — this is what makes duplicated pulls and re-pulls after drops
        exact no-ops on the final merge.
        """
        if not isinstance(state, PulledState):
            raise CollectionServiceError(
                f"FanInAggregator.ingest needs a PulledState, "
                f"got {type(state).__name__}"
            )
        self._states[state.collector_id] = state
        return self

    def ingest_session(
        self,
        collector_id: str,
        session: AggregationSession,
        acked_tokens: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> "FanInAggregator":
        """Ingest a locally-recovered session (a dead collector's
        checkpoint) under its collector id."""
        return self.ingest(
            PulledState(
                collector_id=str(collector_id),
                session=session,
                acked_tokens=dict(acked_tokens or {}),
            )
        )

    def discard(self, collector_id: str) -> bool:
        """Drop a held snapshot (e.g. its collector restarted and will be
        pulled live instead).  True if one was held."""
        return self._states.pop(str(collector_id), None) is not None

    async def pull(
        self, host: str, port: int, *, timeout: float = 10.0
    ) -> PulledState:
        """Pull one collector over the wire and ingest its snapshot."""
        state = await pull_state(host, port, timeout=timeout)
        self.ingest(state)
        return state

    def acked_tokens(self) -> Dict[str, Dict[str, int]]:
        """Union of acknowledged-group tokens across held snapshots."""
        union: Dict[str, Dict[str, int]] = {}
        for state in self._states.values():
            for token, counts in state.acked_tokens.items():
                union[token] = dict(counts)
        return union

    def merged_session(self) -> AggregationSession:
        """A fresh session holding every snapshot's state, exactly once."""
        merged = AggregationSession(self._spec, self._domain)
        for _, state in sorted(self._states.items()):
            merged.merge(state.session)
        return merged

    def finalize(self):
        """Merge and finalize to the protocol's estimator."""
        return self.merged_session().snapshot()
