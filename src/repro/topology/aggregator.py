"""The fan-in tier: merge per-collector snapshots into one session.

:class:`FanInAggregator` holds at most one :class:`~.pull.PulledState` per
collector id — ingesting is *last-write-wins*, so duplicated pulls are
harmless (a later snapshot of the same collector is a superset of the
earlier one) and dropped pulls are repaired by simply pulling again.  The
final :meth:`merged_session` runs the exact
:meth:`~repro.service.AggregationSession.merge` algebra over whatever
snapshots are held, which is why the tree finalizes bit-for-bit identical
to a flat ``run_streaming`` no matter how clients were routed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.domain import Domain
from ..core.exceptions import CollectionServiceError
from ..resilience.coverage import (
    STATUS_LOST,
    STATUS_OK,
    CollectorCoverage,
    CoverageReport,
)
from ..resilience.policies import RetryPolicy
from ..service.session import AggregationSession
from ..service.spec import ProtocolSpec
from .pull import PulledState, pull_state

__all__ = ["FanInAggregator"]


class FanInAggregator:
    """Collect per-collector state snapshots and merge them exactly."""

    def __init__(self, spec, domain: Domain):
        # Borrow AggregationSession's spec/domain validation.
        template = AggregationSession(spec, domain)
        self._spec: ProtocolSpec = template.spec
        self._domain = domain
        self._states: Dict[str, PulledState] = {}

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def collector_ids(self) -> Tuple[str, ...]:
        """Collectors with an ingested snapshot (sorted)."""
        return tuple(sorted(self._states))

    @property
    def num_reports(self) -> int:
        """Reports across every held snapshot (each collector once)."""
        return sum(state.num_reports for state in self._states.values())

    def ingest(self, state: PulledState) -> "FanInAggregator":
        """Hold one collector's snapshot; idempotent per collector id.

        A snapshot of an already-seen collector *replaces* the previous
        one: collector state only grows, so the newest snapshot supersedes
        — this is what makes duplicated pulls and re-pulls after drops
        exact no-ops on the final merge.
        """
        if not isinstance(state, PulledState):
            raise CollectionServiceError(
                f"FanInAggregator.ingest needs a PulledState, "
                f"got {type(state).__name__}"
            )
        self._states[state.collector_id] = state
        return self

    def ingest_session(
        self,
        collector_id: str,
        session: AggregationSession,
        acked_tokens: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> "FanInAggregator":
        """Ingest a locally-recovered session (a dead collector's
        checkpoint) under its collector id."""
        return self.ingest(
            PulledState(
                collector_id=str(collector_id),
                session=session,
                acked_tokens=dict(acked_tokens or {}),
            )
        )

    def discard(self, collector_id: str) -> bool:
        """Drop a held snapshot (e.g. its collector restarted and will be
        pulled live instead).  True if one was held."""
        return self._states.pop(str(collector_id), None) is not None

    async def pull(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> PulledState:
        """Pull one collector over the wire and ingest its snapshot.

        Pulls are idempotent snapshot reads, so retrying under a
        :class:`~repro.resilience.RetryPolicy` is always safe.
        """
        state = await pull_state(host, port, timeout=timeout, retry=retry)
        self.ingest(state)
        return state

    def acked_tokens(self) -> Dict[str, Dict[str, int]]:
        """Union of acknowledged-group tokens across held snapshots."""
        union: Dict[str, Dict[str, int]] = {}
        for state in self._states.values():
            for token, counts in state.acked_tokens.items():
                union[token] = dict(counts)
        return union

    def reports_by_collector(self) -> Dict[str, int]:
        """Report count of every held snapshot, by collector id."""
        return {
            collector_id: state.num_reports
            for collector_id, state in self._states.items()
        }

    def merged_session(self) -> AggregationSession:
        """A fresh session holding every snapshot's state, exactly once."""
        merged = AggregationSession(self._spec, self._domain)
        for _, state in sorted(self._states.items()):
            merged.merge(state.session)
        return merged

    def coverage_report(
        self,
        expected: Optional[Dict[str, int]] = None,
        lost: Optional[Dict[str, str]] = None,
        statuses: Optional[Dict[str, str]] = None,
    ) -> CoverageReport:
        """The expected/received/lost ledger over the held snapshots.

        ``expected`` maps collector ids to the report counts the client
        side saw acknowledged (the exact-loss accounting); ``lost`` maps
        collectors known to be gone without durable state to a readable
        reason; ``statuses`` overrides the per-collector status label
        (e.g. a supervisor marking a snapshot ``recovered``).  Collectors
        appearing in any of the three but without a snapshot count as
        zero received.
        """
        expected = dict(expected or {})
        lost = dict(lost or {})
        statuses = dict(statuses or {})
        received = self.reports_by_collector()
        report = CoverageReport()
        for collector_id in sorted(
            set(received) | set(expected) | set(lost) | set(statuses)
        ):
            if collector_id in lost:
                status, detail = STATUS_LOST, lost[collector_id]
            else:
                status, detail = STATUS_OK, ""
            status = statuses.get(collector_id, status)
            report.add(
                CollectorCoverage(
                    collector_id=collector_id,
                    expected=expected.get(collector_id),
                    received=received.get(collector_id, 0),
                    status=status,
                    detail=detail,
                )
            )
        return report

    def finalize(
        self,
        *,
        allow_partial: bool = False,
        expected: Optional[Dict[str, int]] = None,
        lost: Optional[Dict[str, str]] = None,
        coverage: Optional[CoverageReport] = None,
    ):
        """Merge and finalize to the protocol's estimator.

        Coverage-aware: when ``expected`` counts, known-``lost``
        collectors, or a prebuilt ``coverage`` report reveal missing
        reports, the default strict mode raises
        :class:`~repro.core.exceptions.PartialCoverageError` (carrying
        the report) instead of silently under-counting;
        ``allow_partial=True`` finalizes anyway and attaches the
        :class:`~repro.resilience.CoverageReport` to the estimator's
        metadata.  With no expectations and no losses this is exactly the
        old unconditional finalize.
        """
        if coverage is None:
            coverage = self.coverage_report(expected=expected, lost=lost)
        if not allow_partial:
            coverage.raise_if_partial("topology finalize")
        estimator = self.merged_session().snapshot()
        estimator.metadata["coverage"] = coverage.to_dict()
        return estimator
