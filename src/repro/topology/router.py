"""Client routing across front-line collectors.

A :class:`Router` decides which collector a client connection goes to and
keeps serving when collectors die (:meth:`Router.mark_dead` takes an
address out of rotation).  Two policies:

* :class:`RoundRobinRouter` — connections are dealt to live collectors in
  turn; simplest and perfectly balanced under homogeneous load.
* :class:`ConsistentHashRouter` — connections hash onto a ring of virtual
  nodes (SHA-256, so placement is stable across processes and runs);
  killing a collector remaps only the keys that hashed to it, everyone
  else keeps their collector.

Routing is a pure performance/placement choice: the accumulator algebra
makes the final merged estimates routing-invariant, which is what the
tree-shape invariance suite asserts.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple

from ..core.exceptions import CollectionServiceError, ProtocolConfigurationError

__all__ = [
    "ROUTING_POLICIES",
    "Address",
    "Router",
    "RoundRobinRouter",
    "ConsistentHashRouter",
    "make_router",
]

Address = Tuple[str, int]

ROUTING_POLICIES = ("round-robin", "hash")


def _normalize(targets: Sequence) -> List[Address]:
    normalized: List[Address] = []
    for target in targets:
        try:
            host, port = target
        except (TypeError, ValueError):
            raise ProtocolConfigurationError(
                f"router targets must be (host, port) pairs, got {target!r}"
            ) from None
        normalized.append((str(host), int(port)))
    if not normalized:
        raise ProtocolConfigurationError("a router needs at least one target")
    if len(set(normalized)) != len(normalized):
        raise ProtocolConfigurationError(
            f"router targets must be distinct, got {normalized}"
        )
    return normalized


class Router:
    """Shared liveness bookkeeping; subclasses implement :meth:`route`."""

    def __init__(self, targets: Sequence):
        self._targets = _normalize(targets)
        self._dead: set = set()

    @property
    def targets(self) -> Tuple[Address, ...]:
        """Every configured collector address, live or not."""
        return tuple(self._targets)

    @property
    def live(self) -> Tuple[Address, ...]:
        """Addresses still in rotation."""
        return tuple(
            address for address in self._targets if address not in self._dead
        )

    @property
    def dead(self) -> Tuple[Address, ...]:
        return tuple(
            address for address in self._targets if address in self._dead
        )

    def mark_dead(self, address) -> bool:
        """Take ``address`` out of rotation; True if it was live."""
        address = (str(address[0]), int(address[1]))
        if address not in self._targets or address in self._dead:
            return False
        self._dead.add(address)
        self._on_membership_change()
        return True

    def route(self, key=None) -> Address:
        """The live collector this key's connection should go to."""
        raise NotImplementedError

    def _require_live(self) -> Tuple[Address, ...]:
        live = self.live
        if not live:
            raise CollectionServiceError(
                f"no live collectors left to route to (all of "
                f"{list(self._targets)} are marked dead)"
            )
        return live

    def _on_membership_change(self) -> None:
        pass


class RoundRobinRouter(Router):
    """Deal connections to live collectors in turn (key ignored)."""

    def __init__(self, targets: Sequence):
        super().__init__(targets)
        self._next = 0

    def route(self, key=None) -> Address:
        live = self._require_live()
        address = live[self._next % len(live)]
        self._next += 1
        return address


class ConsistentHashRouter(Router):
    """Hash connections onto a ring of virtual nodes over live collectors.

    ``virtual_nodes`` replicas per collector smooth the load split; the
    ring is rebuilt from the live set on membership changes, so a death
    remaps only the dead collector's arc.
    """

    def __init__(self, targets: Sequence, *, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ProtocolConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self._virtual_nodes = int(virtual_nodes)
        super().__init__(targets)
        self._rebuild_ring()

    @staticmethod
    def _hash(value: str) -> int:
        # SHA-256, not hash(): placement must be identical in every client
        # process regardless of PYTHONHASHSEED.
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _rebuild_ring(self) -> None:
        points = []
        for address in self.live:
            label = f"{address[0]}:{address[1]}"
            for replica in range(self._virtual_nodes):
                points.append((self._hash(f"{label}#{replica}"), address))
        points.sort()
        self._ring_keys = [point for point, _ in points]
        self._ring_addresses = [address for _, address in points]

    def _on_membership_change(self) -> None:
        self._rebuild_ring()

    def route(self, key=None) -> Address:
        self._require_live()
        position = self._hash(repr(key))
        index = bisect.bisect_right(self._ring_keys, position)
        if index == len(self._ring_keys):
            index = 0
        return self._ring_addresses[index]


def make_router(policy: str, targets: Sequence, **kwargs) -> Router:
    """Build a router by policy name (``round-robin`` or ``hash``)."""
    if policy == "round-robin":
        return RoundRobinRouter(targets, **kwargs)
    if policy == "hash":
        return ConsistentHashRouter(targets, **kwargs)
    raise ProtocolConfigurationError(
        f"unknown routing policy {policy!r}; expected one of "
        f"{list(ROUTING_POLICIES)}"
    )
