"""The fan-in wire client: PULL a collector, decode its STATE answer.

A pull is a *non-consuming snapshot read*: the collector answers with its
current merged state (or stats) and keeps serving.  That makes pulls
naturally idempotent — a dropped answer is simply re-pulled, a duplicated
one overwrites the previous snapshot with an equal-or-newer superset —
which is the property the fault-injection harness leans on.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.exceptions import CollectionServiceError, WireFormatError
from ..observability import get_registry, trace
from ..resilience.policies import RetryPolicy
from ..server.framing import (
    ERR,
    MAX_STATE_BYTES,
    PULL,
    STATE,
    ControlMessage,
    FrameDecoder,
    encode_control,
)
from ..service.session import AggregationSession

__all__ = [
    "PulledState",
    "pull_control",
    "pull_state",
    "pull_stats",
    "pull_stats_payload",
]

_READ_CHUNK = 1 << 16

_PULL_COUNTER = None


def _count_pull(outcome: str) -> None:
    global _PULL_COUNTER
    if _PULL_COUNTER is None:
        _PULL_COUNTER = get_registry().counter(
            "repro_topology_pulls_total",
            "PULL round trips attempted, by outcome.",
            labels=("outcome",),
        )
    _PULL_COUNTER.labels(outcome=outcome).inc()


@dataclass
class PulledState:
    """One collector's snapshot: identity, session state, ACK'd tokens."""

    collector_id: str
    session: AggregationSession
    acked_tokens: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def num_reports(self) -> int:
        return self.session.num_reports


async def pull_control(
    host: str,
    port: int,
    payload: Optional[Dict[str, Any]] = None,
    *,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> ControlMessage:
    """Send one ``PULL`` and return the first control frame answered.

    Raises :class:`CollectionServiceError` on an ``ERR`` answer, a
    truncated stream, or a timeout.  A pull is a non-consuming snapshot
    read, so passing a :class:`~repro.resilience.RetryPolicy` makes the
    whole exchange retry safely (an ``ERR`` answer is a protocol verdict,
    not a transient fault, and is never retried).
    """
    attempts = 0
    started = time.monotonic()
    what = str((payload or {}).get("what", "state"))
    while True:
        try:
            with trace.span("topology.pull") as span:
                span.annotate(host=host, port=port, what=what)
                answer = await _pull_control_once(host, port, payload, timeout)
            _count_pull("ok")
            return answer
        except CollectionServiceError as error:
            if "rejected the PULL" in str(error):
                _count_pull("rejected")
                raise
            attempts += 1
            if retry is None or not retry.should_retry(attempts, started):
                _count_pull("failed")
                raise
            _count_pull("retried")
            await asyncio.sleep(retry.delay(attempts))


async def _pull_control_once(
    host: str,
    port: int,
    payload: Optional[Dict[str, Any]],
    timeout: float,
) -> ControlMessage:
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as error:
        raise CollectionServiceError(
            f"cannot connect to collector {host}:{port} for a PULL: "
            f"{error or 'timed out'}"
        ) from error
    try:
        writer.write(encode_control(PULL, payload or {}))
        await writer.drain()
        # The one decoder that *expects* checkpoint-carrying STATE answers,
        # so it alone raises the inbound STATE cap past the generic
        # control bound.
        decoder = FrameDecoder(max_state_bytes=MAX_STATE_BYTES)
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise CollectionServiceError(
                    f"PULL of {host}:{port} timed out after {timeout:.1f}s"
                )
            chunk = await asyncio.wait_for(
                reader.read(_READ_CHUNK), remaining
            )
            if not chunk:
                raise CollectionServiceError(
                    f"collector {host}:{port} closed the stream before "
                    "answering the PULL"
                )
            decoder.absorb(chunk)
            for item in decoder.frames():
                if not isinstance(item, ControlMessage):
                    raise CollectionServiceError(
                        f"collector {host}:{port} answered a PULL with a "
                        "report frame"
                    )
                if item.kind == ERR:
                    raise CollectionServiceError(
                        f"collector {host}:{port} rejected the PULL: "
                        f"{item.payload.get('error', item.payload)}"
                    )
                if item.kind != STATE:
                    raise CollectionServiceError(
                        f"collector {host}:{port} answered a PULL with "
                        f"{item.kind!r}, expected STATE"
                    )
                return item
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def decode_state(payload: Dict[str, Any]) -> PulledState:
    """Decode a ``STATE`` payload carrying a base64 session checkpoint."""
    if payload.get("what") != "state":
        raise CollectionServiceError(
            f"STATE answer is not a state snapshot (what="
            f"{payload.get('what')!r})"
        )
    blob = payload.get("state_b64")
    if not isinstance(blob, str):
        raise CollectionServiceError(
            "STATE answer carries no state_b64 checkpoint"
        )
    try:
        data = base64.b64decode(blob.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as error:
        raise CollectionServiceError(
            f"STATE answer carries undecodable base64 state: {error}"
        ) from error
    try:
        session = AggregationSession.restore_bytes(data)
    except WireFormatError as error:
        raise CollectionServiceError(
            f"STATE answer carries a corrupted session checkpoint: {error}"
        ) from error
    tokens = session.checkpoint_extra.get("acked_tokens", {})
    if not isinstance(tokens, dict):
        tokens = {}
    return PulledState(
        collector_id=str(payload.get("collector_id", "collector")),
        session=session,
        acked_tokens={str(key): dict(value) for key, value in tokens.items()},
    )


async def pull_state(
    host: str,
    port: int,
    *,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> PulledState:
    """Pull one collector's full session state."""
    answer = await pull_control(
        host, port, {"what": "state"}, timeout=timeout, retry=retry
    )
    return decode_state(answer.payload)


async def pull_stats(
    host: str,
    port: int,
    *,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """Pull one collector's stats counters."""
    answer = await pull_control(
        host, port, {"what": "stats"}, timeout=timeout, retry=retry
    )
    stats = answer.payload.get("stats")
    if not isinstance(stats, dict):
        raise CollectionServiceError(
            f"collector {host}:{port} answered a stats PULL without stats"
        )
    return stats


async def pull_stats_payload(
    host: str,
    port: int,
    *,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """Pull one collector's full stats answer (stats + metrics snapshot).

    Like :func:`pull_stats` but keeps the whole ``STATE`` payload, whose
    ``"metrics"`` key (a metrics-snapshot ``state_dict``) lets callers
    roll up instrumentation across a topology tree.
    """
    answer = await pull_control(
        host, port, {"what": "stats"}, timeout=timeout, retry=retry
    )
    payload = answer.payload
    if not isinstance(payload.get("stats"), dict):
        raise CollectionServiceError(
            f"collector {host}:{port} answered a stats PULL without stats"
        )
    return payload
