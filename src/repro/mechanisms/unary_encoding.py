"""Unary encoding / parallel randomized response (PRR, BasicRAPPOR, OUE).

A user whose value is one of ``m`` categories represents it as a length-``m``
one-hot bit vector and perturbs *every* bit independently.  Two probability
settings are supported:

* **symmetric** ("vanilla" PRR): every bit is kept with probability
  ``e^{eps/2} / (1 + e^{eps/2})`` — two bits differ between adjacent inputs,
  so each runs at eps/2 and the composition is eps-LDP (Fact 3.2);
* **optimised** (Wang et al.'s OUE): the 1-bit is kept with probability 1/2
  and each 0-bit flips to 1 with probability ``1 / (e^eps + 1)``, which has
  lower estimator variance at the same privacy level.

The paper's experiments adopt the optimised probabilities but note they make
little practical difference; both are provided (and compared by an ablation
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng

__all__ = ["UnaryEncoding"]


@dataclass(frozen=True)
class UnaryEncoding:
    """Per-bit asymmetric randomized response over one-hot vectors.

    Attributes
    ----------
    probability_keep_one:
        Probability that a 1-bit stays 1 (``p``).
    probability_zero_to_one:
        Probability that a 0-bit becomes 1 (``q``).
    """

    probability_keep_one: float
    probability_zero_to_one: float

    def __post_init__(self):
        p = float(self.probability_keep_one)
        q = float(self.probability_zero_to_one)
        if not (0.0 < q < p < 1.0):
            raise ProtocolConfigurationError(
                f"unary encoding needs 0 < q < p < 1, got p={p}, q={q}"
            )
        object.__setattr__(self, "probability_keep_one", p)
        object.__setattr__(self, "probability_zero_to_one", q)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def symmetric(cls, budget: PrivacyBudget) -> "UnaryEncoding":
        """Vanilla parallel RR: every bit perturbed with eps/2 symmetric RR."""
        keep = budget.halve().rr_keep_probability()
        return cls(probability_keep_one=keep, probability_zero_to_one=1.0 - keep)

    @classmethod
    def optimized(cls, budget: PrivacyBudget) -> "UnaryEncoding":
        """Wang et al.'s optimised unary encoding (p = 1/2, q = 1/(e^eps + 1))."""
        p, q = budget.oue_probabilities()
        return cls(probability_keep_one=p, probability_zero_to_one=q)

    @classmethod
    def from_budget(cls, budget: PrivacyBudget, optimized: bool = True) -> "UnaryEncoding":
        return cls.optimized(budget) if optimized else cls.symmetric(budget)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """The LDP level implied by the probability pair."""
        p = self.probability_keep_one
        q = self.probability_zero_to_one
        return float(np.log((p * (1 - q)) / (q * (1 - p))))

    def variance_per_report(self, true_frequency: float = 0.0) -> float:
        """Variance of one user's unbiased contribution to a cell frequency."""
        p = self.probability_keep_one
        q = self.probability_zero_to_one
        observed = true_frequency * p + (1 - true_frequency) * q
        return observed * (1 - observed) / (p - q) ** 2

    # ------------------------------------------------------------------ #
    # Mechanism
    # ------------------------------------------------------------------ #
    def perturb_bits(self, bits: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb a dense 0/1 matrix (rows are users, columns are cells)."""
        generator = ensure_rng(rng)
        bits = np.asarray(bits)
        uniforms = generator.random(bits.shape)
        keep_one = uniforms < self.probability_keep_one
        zero_to_one = uniforms < self.probability_zero_to_one
        return np.where(bits == 1, keep_one, zero_to_one).astype(np.int8)

    def perturb_onehot_indices(
        self, indices: np.ndarray, domain_size: int, rng: RngLike = None
    ) -> np.ndarray:
        """Perturb one-hot vectors given only their 1-positions.

        Equivalent to materialising the ``(N, domain_size)`` one-hot matrix
        and calling :meth:`perturb_bits`, but avoids building the exact
        matrix: 0-bits are sampled directly with probability ``q`` and then
        the sampled 1-positions are overwritten with a ``p`` coin.
        """
        generator = ensure_rng(rng)
        indices = np.asarray(indices, dtype=np.int64)
        n = indices.shape[0]
        reports = (
            generator.random((n, domain_size)) < self.probability_zero_to_one
        ).astype(np.int8)
        keep = generator.random(n) < self.probability_keep_one
        reports[np.arange(n), indices] = keep.astype(np.int8)
        return reports

    def simulate_onehot_report_sums(
        self, true_counts: np.ndarray, total_users: int, rng: RngLike = None
    ) -> np.ndarray:
        """Per-cell sums of perturbed bits, sampled without materialising users.

        For aggregation only the column sums of the ``N x m`` report matrix
        matter, and each column's sum is the sum of two binomials: the users
        whose true bit is 1 keep it with probability ``p`` and the rest flip
        to 1 with probability ``q``.  Sampling those binomials directly gives
        a statistically identical aggregate in ``O(m)`` memory, which is what
        makes ``InpRR`` feasible at ``2^d`` cells for larger ``d``.
        """
        generator = ensure_rng(rng)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        if true_counts.ndim != 1:
            raise ProtocolConfigurationError(
                f"true counts must be 1-D, got shape {true_counts.shape}"
            )
        if total_users < int(true_counts.max(initial=0)) or total_users < 0:
            # total_users == 0 with all-zero counts is a valid empty batch:
            # both binomials degenerate to zero draws.
            raise ProtocolConfigurationError(
                "total_users must be at least the largest per-cell count"
            )
        kept_ones = generator.binomial(true_counts, self.probability_keep_one)
        flipped_zeros = generator.binomial(
            total_users - true_counts, self.probability_zero_to_one
        )
        return (kept_ones + flipped_zeros).astype(np.float64)

    def unbias_mean(self, observed_mean: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimate from the per-cell mean of reports.

        If the true frequency of a cell is ``f``, the observed mean bit is
        ``f p + (1 - f) q``; inverting gives ``(mean - q) / (p - q)``.
        """
        observed = np.asarray(observed_mean, dtype=np.float64)
        p = self.probability_keep_one
        q = self.probability_zero_to_one
        return (observed - q) / (p - q)

    def unbias_sums(self, report_sums: np.ndarray, num_users: int) -> np.ndarray:
        """Unbiased frequencies from per-cell report *sums* over ``num_users``.

        The sum form is what mergeable accumulators carry: per-cell bit sums
        add exactly across shards, and only the final estimate divides by the
        total user count.
        """
        if num_users < 1:
            raise ProtocolConfigurationError(
                f"need at least one report to unbias sums, got {num_users}"
            )
        sums = np.asarray(report_sums, dtype=np.float64)
        return self.unbias_mean(sums / num_users)
