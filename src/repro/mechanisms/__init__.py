"""LDP mechanism primitives: the building blocks the protocols compose."""

from .direct_encoding import DirectEncoding
from .local_hashing import OptimizedLocalHashing
from .randomized_response import BitRandomizedResponse, SignRandomizedResponse
from .sampling import (
    UniformSampler,
    sample_and_randomize_signs,
    sample_variance,
    split_budget_variance,
)
from .sketch import HadamardCountMeanSketch
from .unary_encoding import UnaryEncoding

__all__ = [
    "BitRandomizedResponse",
    "SignRandomizedResponse",
    "UnaryEncoding",
    "DirectEncoding",
    "UniformSampler",
    "sample_and_randomize_signs",
    "sample_variance",
    "split_budget_variance",
    "OptimizedLocalHashing",
    "HadamardCountMeanSketch",
]
