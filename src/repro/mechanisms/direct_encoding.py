"""Direct encoding / generalised randomized response / preferential sampling.

A user whose value is one of ``m`` categories reports the true category with
probability ``p_s = e^eps / (e^eps + m - 1)`` and each other category with
probability ``(1 - p_s) / (m - 1)`` (Fact 3.1 of the paper; the paper calls
this Preferential Sampling, the frequency-estimation literature calls it
Generalised Randomized Response or Direct Encoding).

For ``m = 2`` this coincides with one-bit randomized response.  The
aggregator's unbiased estimator for the frequency of category ``j`` from the
fraction of reports ``F_j`` is ``(F_j - q) / (p_s - q)`` with
``q = (1 - p_s)/(m - 1)``, which matches the ``(D F_j + p_s - 1)/(D p_s + p_s - 1)``
form derived in Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng

__all__ = ["DirectEncoding"]


@dataclass(frozen=True)
class DirectEncoding:
    """Generalised randomized response over ``domain_size`` categories."""

    domain_size: int
    keep_probability: float

    def __post_init__(self):
        size = int(self.domain_size)
        keep = float(self.keep_probability)
        if size < 2:
            raise ProtocolConfigurationError(
                f"direct encoding needs a domain of size >= 2, got {size}"
            )
        uniform = 1.0 / size
        if not (uniform < keep < 1.0):
            raise ProtocolConfigurationError(
                f"keep probability must lie in (1/{size}, 1), got {keep}"
            )
        object.__setattr__(self, "domain_size", size)
        object.__setattr__(self, "keep_probability", keep)

    @classmethod
    def from_budget(cls, budget: PrivacyBudget, domain_size: int) -> "DirectEncoding":
        return cls(domain_size, budget.grr_keep_probability(domain_size))

    @property
    def lie_probability(self) -> float:
        """Probability of reporting any particular *incorrect* category."""
        return (1.0 - self.keep_probability) / (self.domain_size - 1)

    @property
    def epsilon(self) -> float:
        """The LDP level implied by the probability setting."""
        return float(np.log(self.keep_probability / self.lie_probability))

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb an array of category indices element-wise.

        A lying user reports a category drawn uniformly from the ``m - 1``
        categories different from their own.
        """
        generator = ensure_rng(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise ProtocolConfigurationError(
                f"values must lie in [0, {self.domain_size}), got range "
                f"[{values.min()}, {values.max()}]"
            )
        lie = generator.random(values.shape) >= self.keep_probability
        # Draw a uniformly random *other* category by drawing from m-1 slots
        # and shifting the slots at or above the true value up by one.
        offsets = generator.integers(0, self.domain_size - 1, size=values.shape)
        lies = np.where(offsets >= values, offsets + 1, offsets)
        return np.where(lie, lies, values)

    def unbias_frequencies(self, report_fractions: np.ndarray) -> np.ndarray:
        """Unbiased per-category frequency estimates from report fractions."""
        fractions = np.asarray(report_fractions, dtype=np.float64)
        p = self.keep_probability
        q = self.lie_probability
        return (fractions - q) / (p - q)

    def count_reports(self, reports: np.ndarray) -> np.ndarray:
        """Per-category report counts — the mergeable aggregation state.

        Counts from different report batches add exactly, so sharded
        aggregation and single-pass aggregation agree bit-for-bit.
        """
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size and (reports.min() < 0 or reports.max() >= self.domain_size):
            raise ProtocolConfigurationError(
                f"reports must lie in [0, {self.domain_size})"
            )
        return np.bincount(reports, minlength=self.domain_size)

    def unbias_counts(self, counts: np.ndarray, num_users: int) -> np.ndarray:
        """Unbiased per-category frequencies from accumulated report counts."""
        if num_users < 1:
            raise ProtocolConfigurationError("cannot aggregate zero reports")
        counts = np.asarray(counts, dtype=np.float64)
        return self.unbias_frequencies(counts / num_users)

    def report_histogram(self, reports: np.ndarray) -> np.ndarray:
        """Fraction of reports landing on each category."""
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size == 0:
            raise ProtocolConfigurationError("cannot aggregate zero reports")
        counts = np.bincount(reports, minlength=self.domain_size).astype(np.float64)
        return counts / reports.size

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Convenience: histogram + unbias in one call."""
        return self.unbias_frequencies(self.report_histogram(reports))

    def variance_per_report(self, true_frequency: float = 0.0) -> float:
        """Variance of one user's unbiased contribution to a cell frequency."""
        p = self.keep_probability
        q = self.lie_probability
        observed = true_frequency * p + (1 - true_frequency) * q
        return observed * (1 - observed) / (p - q) ** 2
