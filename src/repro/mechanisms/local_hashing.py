"""Optimised Local Hashing (OLH), Wang et al., USENIX Security 2017.

OLH is a generic LDP *frequency oracle* for large categorical domains: each
user samples a universal hash function mapping the domain onto ``g`` buckets
(optimally ``g = floor(e^eps) + 1``), hashes their value, and reports the
bucket through generalised randomized response over ``g`` categories.  The
aggregator estimates the frequency of any domain element ``x`` from the
fraction of users whose report equals their own hash of ``x``.

The paper uses OLH (as ``InpOLH``) as a baseline way to materialise marginals
by estimating all ``2^d`` cell frequencies and aggregating, and observes that
its decoding cost (``O(N * 2^d)``) quickly becomes the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import math

import numpy as np

from ..core.backends import _SEED_MIX, _avalanche, fold_buckets, resolve_backend
from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from .direct_encoding import DirectEncoding

__all__ = ["OptimizedLocalHashing", "DEFAULT_DECODE_BATCH_SIZE"]

# Parameters of a simple multiply-shift universal hash family on 64-bit keys.
_MULTIPLIER_BITS = 61
_MERSENNE_PRIME = (1 << 61) - 1

#: Default number of domain elements hashed per decode block.  Combined with
#: the user blocking below this keeps each (users x domain) intermediate a
#: few MB — big enough to amortise numpy dispatch, small enough to stay
#: cache-resident — and is exposed as ``OptimizedLocalHashing.decode_batch_size``
#: / ``InpOLH(..., decode_batch_size=...)`` for tuning.
DEFAULT_DECODE_BATCH_SIZE = 1024

def _hash(values: np.ndarray, seeds: np.ndarray, buckets: int) -> np.ndarray:
    """Vectorised universal-style hash ``h_seed(value) -> [0, buckets)``.

    Mixes the (value, seed) pair through a splitmix64-style avalanche so that
    even small, sequential domains spread uniformly — a plain affine
    multiply-mod hash is far too regular on ``0..2^d - 1`` inputs and would
    bias the collision-debiasing step of the oracles built on top.  The
    avalanche and bucket fold live in :mod:`repro.core.backends` so the
    client-side hash and every decode backend share one definition.
    """
    values = np.asarray(values, dtype=np.uint64)
    seeds = np.asarray(seeds, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = _avalanche(values + seeds * _SEED_MIX)
    return fold_buckets(mixed, buckets).astype(np.int64)


@dataclass(frozen=True)
class OptimizedLocalHashing:
    """The OLH frequency oracle.

    Attributes
    ----------
    domain_size:
        Size of the (flattened) input domain, ``2^d`` for binary data.
    budget:
        The epsilon-LDP budget each user's single report satisfies.
    num_buckets:
        Hash range ``g``; defaults to the variance-optimal
        ``floor(e^eps) + 1``.
    decode_batch_size:
        Domain elements hashed per decode block in :meth:`support_counts`
        (``0`` selects :data:`DEFAULT_DECODE_BATCH_SIZE`).  A pure
        performance knob: the counts are exact for any value, so it is
        excluded from equality/merge-signature comparisons.
    kernel_backend:
        Which kernel backend decodes support counts (``""`` defers to
        :func:`repro.core.backends.resolve_backend`'s env/default chain).
        Every backend produces identical counts, so this is a pure
        performance knob like ``decode_batch_size``.
    """

    domain_size: int
    budget: PrivacyBudget
    num_buckets: int = 0
    decode_batch_size: int = field(default=0, compare=False)
    kernel_backend: str = field(default="", compare=False)

    def __post_init__(self):
        if int(self.domain_size) < 2:
            raise ProtocolConfigurationError(
                f"domain size must be >= 2, got {self.domain_size}"
            )
        buckets = int(self.num_buckets)
        if buckets <= 0:
            buckets = int(math.floor(self.budget.exp_epsilon)) + 1
        if buckets < 2:
            buckets = 2
        decode_batch = int(self.decode_batch_size)
        if decode_batch < 0:
            raise ProtocolConfigurationError(
                f"decode batch size must be >= 0 (0 = default), got {decode_batch}"
            )
        if decode_batch == 0:
            decode_batch = DEFAULT_DECODE_BATCH_SIZE
        if not isinstance(self.kernel_backend, str):
            raise ProtocolConfigurationError(
                f"kernel_backend must be a backend name string, got "
                f"{type(self.kernel_backend).__name__}"
            )
        object.__setattr__(self, "domain_size", int(self.domain_size))
        object.__setattr__(self, "num_buckets", buckets)
        object.__setattr__(self, "decode_batch_size", decode_batch)

    @property
    def encoder(self) -> DirectEncoding:
        """The GRR mechanism applied to the hashed value."""
        return DirectEncoding.from_budget(self.budget, self.num_buckets)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def perturb(
        self, values: np.ndarray, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Produce per-user reports ``(hash_seeds, noisy_buckets)``."""
        generator = ensure_rng(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            # An empty report batch is a valid (if trivial) streaming chunk.
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ProtocolConfigurationError(
                f"values must lie in [0, {self.domain_size})"
            )
        seeds = generator.integers(1, 2**62, size=values.shape[0], dtype=np.int64)
        buckets = _hash(values, seeds, self.num_buckets)
        noisy = self.encoder.perturb(buckets, rng=generator)
        return seeds, noisy

    # ------------------------------------------------------------------ #
    # Aggregator side
    # ------------------------------------------------------------------ #
    def support_counts(
        self, seeds: np.ndarray, noisy_buckets: np.ndarray, batch_size: int = 0
    ) -> np.ndarray:
        """Per-element support counts — OLH's mergeable aggregation state.

        The support count of element ``x`` is the number of users whose noisy
        bucket equals their hash of ``x``.  It is a per-user sum, so supports
        computed on disjoint report batches add exactly.

        This is the ``O(N * 2^d)`` hot loop of the library; the scan itself
        is delegated to the selected kernel backend
        (:func:`repro.core.backends.resolve_backend` — numpy blocked scan,
        thread-pool fan-out, or the optional numba JIT).  Every backend
        produces identical ``int64`` counts for any ``batch_size`` (``0``
        selects :attr:`decode_batch_size`);
        :meth:`support_counts_reference` keeps the original implementation
        as the conformance ground truth.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        noisy_buckets = np.asarray(noisy_buckets, dtype=np.int64)
        if seeds.shape != noisy_buckets.shape or seeds.ndim != 1:
            raise ProtocolConfigurationError(
                "seeds and noisy buckets must be 1-D arrays of the same length"
            )
        batch = int(batch_size) if batch_size else self.decode_batch_size
        if batch < 1:
            raise ProtocolConfigurationError(
                f"decode batch size must be >= 1, got {batch}"
            )
        backend = resolve_backend(self.kernel_backend)
        support = backend.support_counts(
            seeds, noisy_buckets, self.domain_size, self.num_buckets, batch
        )
        return support.astype(np.float64)

    def support_counts_reference(
        self, seeds: np.ndarray, noisy_buckets: np.ndarray, batch_size: int = 256
    ) -> np.ndarray:
        """Reference support counting: full-height hash matrix per domain batch.

        The pre-optimisation implementation, retained as the ground truth
        :meth:`support_counts` is proven against and the baseline the kernel
        benchmarks time the blocked path over.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        noisy_buckets = np.asarray(noisy_buckets, dtype=np.int64)
        if seeds.shape != noisy_buckets.shape or seeds.ndim != 1:
            raise ProtocolConfigurationError(
                "seeds and noisy buckets must be 1-D arrays of the same length"
            )
        support = np.zeros(self.domain_size, dtype=np.float64)
        for start in range(0, self.domain_size, batch_size):
            stop = min(start + batch_size, self.domain_size)
            candidates = np.arange(start, stop, dtype=np.int64)
            # hashes[i, j] = h_{seed_i}(candidate_j), by broadcasting.
            hashes = _hash(candidates[None, :], seeds[:, None], self.num_buckets)
            support[start:stop] = (hashes == noisy_buckets[:, None]).sum(axis=0)
        return support

    def estimate_from_support(
        self, support: np.ndarray, num_users: int
    ) -> np.ndarray:
        """De-bias accumulated support counts into frequency estimates.

        The standard OLH de-biasing ``(support/N - 1/g) / (p - 1/g)`` yields
        unbiased frequencies.
        """
        if num_users < 1:
            raise ProtocolConfigurationError("cannot aggregate zero reports")
        support = np.asarray(support, dtype=np.float64)
        p = self.encoder.keep_probability
        uniform = 1.0 / self.num_buckets
        return (support / num_users - uniform) / (p - uniform)

    def estimate_frequencies(
        self, seeds: np.ndarray, noisy_buckets: np.ndarray, batch_size: int = 0
    ) -> np.ndarray:
        """Estimate the frequency of every domain element in one pass."""
        support = self.support_counts(seeds, noisy_buckets, batch_size=batch_size)
        return self.estimate_from_support(support, np.asarray(seeds).shape[0])
