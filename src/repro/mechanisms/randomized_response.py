"""Randomized response on single bits and on +/-1 values.

Randomized response (Warner, 1965) is the canonical LDP primitive: a user
holding a private bit reports it truthfully with probability
``p = e^eps / (1 + e^eps)`` and lies otherwise, which satisfies epsilon-LDP.
The library uses two flavours:

* :class:`BitRandomizedResponse` for ``{0, 1}`` bits (used per-cell by the
  parallel-RR protocols and per-attribute by the EM baseline);
* :class:`SignRandomizedResponse` for ``{-1, +1}`` values (used for Hadamard
  coefficients, where flipping the sign is the natural perturbation).

Both expose the matching unbiased de-biasing transforms the aggregator
applies to averaged reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng

__all__ = ["BitRandomizedResponse", "SignRandomizedResponse"]


def _validate_probability(keep_probability: float) -> float:
    keep = float(keep_probability)
    if not 0.5 < keep < 1.0:
        raise ProtocolConfigurationError(
            "randomized response needs a keep probability strictly between "
            f"0.5 and 1, got {keep}"
        )
    return keep


@dataclass(frozen=True)
class BitRandomizedResponse:
    """Symmetric randomized response on ``{0, 1}`` bits.

    Attributes
    ----------
    keep_probability:
        Probability of reporting the true bit.  ``from_budget`` sets it to
        ``e^eps / (1 + e^eps)`` so a single application is epsilon-LDP.
    """

    keep_probability: float

    def __post_init__(self):
        object.__setattr__(
            self, "keep_probability", _validate_probability(self.keep_probability)
        )

    @classmethod
    def from_budget(cls, budget: PrivacyBudget) -> "BitRandomizedResponse":
        return cls(budget.rr_keep_probability())

    @property
    def epsilon(self) -> float:
        """The LDP guarantee a single application of this mechanism provides."""
        keep = self.keep_probability
        return float(np.log(keep / (1.0 - keep)))

    def perturb(self, bits: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb an array of 0/1 bits element-wise."""
        generator = ensure_rng(rng)
        bits = np.asarray(bits)
        flips = generator.random(bits.shape) >= self.keep_probability
        return np.where(flips, 1 - bits, bits).astype(np.int8)

    def unbias_mean(self, observed_mean: np.ndarray) -> np.ndarray:
        """Invert the expected perturbation on an averaged report.

        If the true mean bit value is ``f`` the observed mean is
        ``p f + (1 - p)(1 - f)``; solving for ``f`` gives the returned
        unbiased estimate.
        """
        observed = np.asarray(observed_mean, dtype=np.float64)
        keep = self.keep_probability
        return (observed - (1.0 - keep)) / (2.0 * keep - 1.0)

    def variance_per_report(self, true_frequency: float = 0.5) -> float:
        """Variance of one unbiased per-user estimate at the given frequency."""
        keep = self.keep_probability
        observed = keep * true_frequency + (1 - keep) * (1 - true_frequency)
        return observed * (1 - observed) / (2 * keep - 1) ** 2


@dataclass(frozen=True)
class SignRandomizedResponse:
    """Symmetric randomized response on ``{-1, +1}`` values.

    Used to perturb scaled Hadamard coefficients: the value is kept with
    probability ``p`` and negated otherwise, so ``E[report] = (2p - 1) value``
    and dividing an averaged report by ``2p - 1`` de-biases it.
    """

    keep_probability: float

    def __post_init__(self):
        object.__setattr__(
            self, "keep_probability", _validate_probability(self.keep_probability)
        )

    @classmethod
    def from_budget(cls, budget: PrivacyBudget) -> "SignRandomizedResponse":
        return cls(budget.rr_keep_probability())

    @property
    def epsilon(self) -> float:
        keep = self.keep_probability
        return float(np.log(keep / (1.0 - keep)))

    @property
    def attenuation(self) -> float:
        """The multiplicative bias ``2p - 1`` applied to the true value."""
        return 2.0 * self.keep_probability - 1.0

    def perturb(self, signs: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb an array of +/-1 values element-wise."""
        generator = ensure_rng(rng)
        signs = np.asarray(signs, dtype=np.float64)
        flips = generator.random(signs.shape) >= self.keep_probability
        return np.where(flips, -signs, signs)

    def unbias_mean(self, observed_mean: np.ndarray) -> np.ndarray:
        """Divide an averaged report by the attenuation factor ``2p - 1``."""
        return np.asarray(observed_mean, dtype=np.float64) / self.attenuation

    def unbias_sums(self, sign_sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Unbiased per-group values from sums of noisy signs and group sizes.

        This is the mergeable-accumulator form of :meth:`unbias_mean`: sums
        of ``+/-1`` reports add exactly across shards.  Groups nobody
        reported to are estimated as 0 (their prior under a uniform
        distribution).
        """
        sums = np.asarray(sign_sums, dtype=np.float64)
        counts = np.asarray(counts)
        means = np.zeros_like(sums)
        seen = counts > 0
        means[seen] = sums[seen] / counts[seen]
        return self.unbias_mean(means)

    def variance_per_report(self) -> float:
        """Variance of one unbiased per-user estimate (independent of the value).

        For a true value in ``{-1, +1}`` the report is +/-1 with mean
        ``(2p - 1) value``, so the de-biased estimate has variance
        ``1 / (2p - 1)^2 - 1 = 4 p (1 - p) / (2p - 1)^2``.
        """
        keep = self.keep_probability
        return 4.0 * keep * (1.0 - keep) / (2.0 * keep - 1.0) ** 2
