"""Hadamard Count-Mean Sketch (the Apple LDP frequency oracle).

Each user owns a value from a (large) domain.  The sketch uses ``g`` hash
functions, each mapping the domain onto ``w`` buckets (``w`` a power of two).
A user samples one hash function, hashes their value, samples one Hadamard
coefficient index of the width-``w`` one-hot bucket vector, and reports that
single +/-1 coefficient through randomized response together with the two
sampled indices.  The aggregator de-biases the reports into a ``g x w``
sketch in the Hadamard domain, inverts the transform per row, and estimates
the frequency of any element with the standard count-mean-sketch formula.

The paper uses this as the ``InpHTCMS`` baseline (Figure 10): the Hadamard
step there only buys communication, unlike ``InpHT`` where it also buys
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core import bitops
from ..core.exceptions import ProtocolConfigurationError
from ..core.hadamard import fwht_rows
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from .randomized_response import SignRandomizedResponse

__all__ = ["HadamardCountMeanSketch"]

_MERSENNE_PRIME = (1 << 61) - 1


def _hash_matrix(values: np.ndarray, salts: np.ndarray, width: int) -> np.ndarray:
    """``hashes[i, l] = h_l(values[i])`` for the sketch's ``g`` hash functions.

    Uses a splitmix64-style avalanche on the (value, salt) pair so that even
    small, sequential domains spread uniformly over the sketch width; a plain
    affine hash is too regular on ``0..2^d - 1`` inputs and would bias the
    count-mean collision correction.
    """
    values = np.asarray(values, dtype=np.uint64)[:, None]
    salts = np.asarray(salts, dtype=np.uint64)[None, :]
    with np.errstate(over="ignore"):
        mixed = values + salts * np.uint64(0x9E3779B97F4A7C15)
        mixed ^= mixed >> np.uint64(30)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(27)
        mixed *= np.uint64(0x94D049BB133111EB)
        mixed ^= mixed >> np.uint64(31)
    return (mixed % np.uint64(width)).astype(np.int64)


@dataclass(frozen=True)
class HadamardCountMeanSketch:
    """The HCMS frequency oracle.

    Attributes
    ----------
    domain_size:
        Size of the input domain (``2^d`` for binary data).
    budget:
        Per-user epsilon-LDP budget.
    num_hashes:
        Number of hash functions ``g`` (the paper's experiments use 5).
    width:
        Sketch width ``w`` (power of two; the paper uses 256).
    seed:
        Seed for the fixed, publicly-known hash family.
    """

    domain_size: int
    budget: PrivacyBudget
    num_hashes: int = 5
    width: int = 256
    seed: int = 0x5EED

    def __post_init__(self):
        if int(self.domain_size) < 2:
            raise ProtocolConfigurationError(
                f"domain size must be >= 2, got {self.domain_size}"
            )
        if int(self.num_hashes) < 1:
            raise ProtocolConfigurationError(
                f"need at least one hash function, got {self.num_hashes}"
            )
        width = int(self.width)
        if width < 2 or (width & (width - 1)) != 0:
            raise ProtocolConfigurationError(
                f"sketch width must be a power of two >= 2, got {width}"
            )
        object.__setattr__(self, "domain_size", int(self.domain_size))
        object.__setattr__(self, "num_hashes", int(self.num_hashes))
        object.__setattr__(self, "width", width)

    def _salts(self) -> np.ndarray:
        """Deterministic per-hash-function salts shared by clients and server."""
        return (
            np.arange(1, self.num_hashes + 1, dtype=np.uint64) * np.uint64(0xABCDEF01)
            + np.uint64(self.seed)
        )

    @property
    def mechanism(self) -> SignRandomizedResponse:
        """The full-budget sign-RR each user applies to their one coefficient."""
        return SignRandomizedResponse.from_budget(self.budget)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def perturb(
        self, values: np.ndarray, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce reports ``(hash_index, coefficient_index, noisy_sign)``."""
        generator = ensure_rng(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            # An empty report batch is a valid (if trivial) streaming chunk.
            empty_indices = np.zeros(0, dtype=np.int64)
            return empty_indices, empty_indices.copy(), np.zeros(0, dtype=np.float64)
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ProtocolConfigurationError(
                f"values must lie in [0, {self.domain_size})"
            )
        n = values.shape[0]
        hash_indices = generator.integers(0, self.num_hashes, size=n, dtype=np.int64)
        salts = self._salts()
        buckets = _hash_matrix(values, salts, self.width)[np.arange(n), hash_indices]
        coefficient_indices = generator.integers(0, self.width, size=n, dtype=np.int64)
        # The Hadamard coefficient of a one-hot bucket vector is just the sign
        # (-1)^{<m, bucket>} (unnormalised transform).
        signs = (
            1.0 - 2.0 * bitops.parity(buckets & coefficient_indices)
        ).astype(np.float64)
        noisy = self.mechanism.perturb(signs, rng=generator)
        return hash_indices, coefficient_indices, noisy

    # ------------------------------------------------------------------ #
    # Aggregator side
    # ------------------------------------------------------------------ #
    def sign_sums(
        self,
        hash_indices: np.ndarray,
        coefficient_indices: np.ndarray,
        noisy_signs: np.ndarray,
    ) -> np.ndarray:
        """Per-(hash, coefficient) sums of noisy signs — the mergeable state.

        Each entry is a sum of ``+/-1`` reports, so sums over disjoint report
        batches add exactly and shard-then-merge aggregation reproduces the
        single-pass sketch bit-for-bit.
        """
        hash_indices = np.asarray(hash_indices, dtype=np.int64)
        coefficient_indices = np.asarray(coefficient_indices, dtype=np.int64)
        noisy_signs = np.asarray(noisy_signs, dtype=np.float64)
        if not (
            hash_indices.shape == coefficient_indices.shape == noisy_signs.shape
        ):
            raise ProtocolConfigurationError("report arrays must share one shape")
        flat = hash_indices * self.width + coefficient_indices
        sums = np.bincount(
            flat, weights=noisy_signs, minlength=self.num_hashes * self.width
        )
        return sums.reshape(self.num_hashes, self.width)

    def sketch_from_sums(self, sign_sums: np.ndarray, num_users: int) -> np.ndarray:
        """De-bias accumulated sign sums into the ``g x w`` count-space sketch."""
        if num_users < 1:
            raise ProtocolConfigurationError("cannot aggregate zero reports")
        sign_sums = np.asarray(sign_sums, dtype=np.float64)
        # Each user's report is an unbiased estimate of g * w * (their
        # coefficient) once divided by the RR attenuation: the factors undo
        # the 1/g and 1/w sampling probabilities.
        scale = self.num_hashes * self.width / self.mechanism.attenuation
        sketch_hadamard = sign_sums * scale / num_users
        # Invert the (unnormalised) transform across all g rows in one
        # batched pass: counts[l, b] = (1/w) sum_m (-1)^{<m,b>} coeff.
        return fwht_rows(sketch_hadamard) / self.width

    def build_sketch(
        self,
        hash_indices: np.ndarray,
        coefficient_indices: np.ndarray,
        noisy_signs: np.ndarray,
    ) -> np.ndarray:
        """Assemble the de-biased ``g x w`` sketch of *counts* in data space."""
        sums = self.sign_sums(hash_indices, coefficient_indices, noisy_signs)
        return self.sketch_from_sums(sums, np.asarray(hash_indices).shape[0])

    def frequencies_from_sketch(self, sketch: np.ndarray) -> np.ndarray:
        """Estimate the frequency of every domain element from a sketch."""
        salts = self._salts()
        candidates = np.arange(self.domain_size, dtype=np.int64)
        hashes = _hash_matrix(candidates, salts, self.width)  # (domain, g)
        per_hash = sketch[np.arange(self.num_hashes)[None, :], hashes]
        mean = per_hash.mean(axis=1)
        # Count-mean de-biasing for hash collisions: a random other element
        # collides with probability 1/w.
        w = self.width
        return (w / (w - 1.0)) * (mean - 1.0 / w)

    def estimate_frequencies(
        self,
        hash_indices: np.ndarray,
        coefficient_indices: np.ndarray,
        noisy_signs: np.ndarray,
    ) -> np.ndarray:
        """Estimate the frequency of every domain element from the reports."""
        sketch = self.build_sketch(hash_indices, coefficient_indices, noisy_signs)
        return self.frequencies_from_sketch(sketch)
