"""Sampling strategies: sample-then-randomize vs. budget splitting.

When a user holds ``m`` pieces of information, two LDP strategies compete
(Section 3.1 of the paper):

* **budget splitting (BS)** — release all ``m`` pieces, each through an
  ``eps/m`` mechanism (sequential composition keeps the total at eps);
* **randomized response with sampling (RRS)** — uniformly sample one of the
  ``m`` pieces and release only it at the full eps.

The paper (and the wider LDP literature) argues sampling wins, and its
strongest protocols are built on it.  This module provides the uniform
sampler used by all ``Inp*``/``Marg*`` protocols plus a small helper that
compares the two strategies' variances (backing the sample-vs-split ablation
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from .randomized_response import SignRandomizedResponse

__all__ = [
    "UniformSampler",
    "sample_and_randomize_signs",
    "split_budget_variance",
    "sample_variance",
]


@dataclass(frozen=True)
class UniformSampler:
    """Uniform sampling of one item index out of ``num_items`` per user."""

    num_items: int

    def __post_init__(self):
        if int(self.num_items) < 1:
            raise ProtocolConfigurationError(
                f"need at least one item to sample from, got {self.num_items}"
            )
        object.__setattr__(self, "num_items", int(self.num_items))

    @property
    def sampling_probability(self) -> float:
        """Probability ``1/m`` that any fixed item is the one sampled."""
        return 1.0 / self.num_items

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Sample one item index for each of ``count`` users."""
        if count <= 0:
            raise ProtocolConfigurationError(f"count must be positive, got {count}")
        generator = ensure_rng(rng)
        return generator.integers(0, self.num_items, size=count, dtype=np.int64)

    def inverse_probability(self) -> float:
        """The ``1/p_s = m`` scale-up applied when averaging sampled reports."""
        return float(self.num_items)


def sample_and_randomize_signs(
    values: np.ndarray,
    budget: PrivacyBudget,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, SignRandomizedResponse]:
    """The RRS pattern on a matrix of +/-1 values.

    ``values[i, j]`` is user ``i``'s true value for item ``j``.  Each user
    uniformly samples one column and perturbs that single value with
    full-budget sign randomized response.  Returns ``(sampled_columns,
    perturbed_values, mechanism)``.
    """
    generator = ensure_rng(rng)
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ProtocolConfigurationError(
            f"values must be a 2-D (users x items) array, got shape {values.shape}"
        )
    n, m = values.shape
    sampler = UniformSampler(m)
    columns = sampler.sample(n, rng=generator)
    mechanism = SignRandomizedResponse.from_budget(budget)
    sampled = values[np.arange(n), columns]
    perturbed = mechanism.perturb(sampled, rng=generator)
    return columns, perturbed, mechanism


def sample_variance(budget: PrivacyBudget, num_items: int, population: int) -> float:
    """Variance of the mean estimate of one +/-1 item under sample-then-RR.

    Only roughly ``population / num_items`` users report on any fixed item,
    each with the full-budget RR variance.
    """
    if num_items < 1 or population < 1:
        raise ProtocolConfigurationError("num_items and population must be >= 1")
    mechanism = SignRandomizedResponse.from_budget(budget)
    effective_users = population / num_items
    return mechanism.variance_per_report() / effective_users


def split_budget_variance(budget: PrivacyBudget, num_items: int, population: int) -> float:
    """Variance of the mean estimate of one +/-1 item under budget splitting.

    Every user reports on every item, but at ``eps / num_items`` each, which
    inflates the per-report variance roughly quadratically in ``num_items``.
    """
    if num_items < 1 or population < 1:
        raise ProtocolConfigurationError("num_items and population must be >= 1")
    mechanism = SignRandomizedResponse.from_budget(budget.split(num_items))
    return mechanism.variance_per_report() / population
