"""Multiprocessing backend: true multi-core parallelism via picklable shards.

Each worker process receives whole :class:`~repro.execution.base.ShardWork`
units (protocol configuration, record batches, pre-spawned child
generators), evaluates them with the shared
:func:`~repro.execution.base.execute_shard` rule, and sends back only the
accumulator's :meth:`~repro.protocols.base.Accumulator.state_dict` — a small
dict of integer-sum arrays for every protocol except the ``InpEM`` baseline
(whose state is the noisy records themselves).  The driver restores each
state into a fresh accumulator and merges associatively, so the result is
bit-for-bit identical to the serial path.

The cost model is the usual one: one-time pool start-up plus per-shard
pickling of the record batches, amortised only when the per-shard encoding
work dominates.  For tiny datasets the serial or thread backends win.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional

from ..core.exceptions import ExecutionError
from .base import Executor, ShardWork, execute_shard

__all__ = ["ProcessExecutor"]


def _execute_shard_payload(work: ShardWork):
    """Worker-side evaluation returning (accumulator state, final rng states).

    The generators in a pickled work unit are *copies*: encoding consumes
    them in the worker, not on the driver.  Shipping their final
    ``bit_generator`` states back lets the driver fast-forward its own
    generator objects, so the caller-visible rng side effects match the
    serial backend exactly (``run_streaming`` hands the caller's own
    generator to the single-batch case).
    """
    accumulator = execute_shard(work)
    return (
        accumulator.state_dict(),
        tuple(rng.bit_generator.state for rng in work.rngs),
    )


class ProcessExecutor(Executor):
    """Evaluates shards on a lazily created, reusable process pool.

    Parameters
    ----------
    workers:
        Number of worker processes.
    start_method:
        Forwarded to :func:`multiprocessing.get_context` (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` uses the platform default.
        All methods work because work units and results are fully picklable.
    """

    name = "process"

    def __init__(self, workers: int = 1, start_method: Optional[str] = None):
        super().__init__(workers)
        if start_method is not None:
            valid = multiprocessing.get_all_start_methods()
            if start_method not in valid:
                raise ExecutionError(
                    f"unknown start method {start_method!r}; "
                    f"this platform supports {valid}"
                )
        self._start_method = start_method
        self._pool = None

    def _run(self, works: List[ShardWork]) -> List:
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            self._pool = context.Pool(processes=self._workers)
        payloads = self._pool.map(_execute_shard_payload, works)
        accumulators = []
        for work, (state, rng_states) in zip(works, payloads):
            for rng, final_state in zip(work.rngs, rng_states):
                rng.bit_generator.state = final_state
            accumulators.append(
                work.protocol.accumulator(work.domain).load_state(state)
            )
        return accumulators

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
