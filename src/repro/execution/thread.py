"""Thread-pool backend: shared-memory parallelism under the GIL.

Threads share the interpreter, so nothing is pickled — record batches stay
views into the dataset's record matrix and the per-shard accumulators are
returned directly.  Pure-Python encoding steps serialise on the GIL, but the
protocols spend most of their time inside NumPy kernels (bit packing,
``bincount``, binomial sampling) which release it, so threads recover a
useful fraction of the available cores without any serialisation cost.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

from .base import Executor, ShardWork, execute_shard

__all__ = ["ThreadExecutor"]


class ThreadExecutor(Executor):
    """Evaluates shards on a lazily created, reusable thread pool."""

    name = "thread"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _run(self, works: List[ShardWork]) -> List:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
        return list(self._pool.map(execute_shard, works))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
