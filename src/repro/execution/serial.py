"""The in-process reference backend: one shard at a time, no pool."""

from __future__ import annotations

from typing import List

from .base import Executor, ShardWork, execute_shard

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Evaluates every shard sequentially in the calling thread.

    This is the default backend and the semantic reference the parallel
    backends are tested against; ``workers`` is accepted for interface
    uniformity but a serial executor never runs more than one shard at a
    time.
    """

    name = "serial"

    def _run(self, works: List[ShardWork]) -> List:
        return [execute_shard(work) for work in works]
