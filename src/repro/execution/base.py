"""Executor interface and the shard work unit it schedules.

:meth:`~repro.protocols.base.MarginalReleaseProtocol.run_streaming` splits a
dataset into record batches, assigns each batch a pre-spawned child generator
and a shard, and hands the resulting :class:`ShardWork` units to an
:class:`Executor`.  An executor's only job is to evaluate
:func:`execute_shard` for every unit — encode the shard's batches client-side
and fold them into one fresh accumulator — and return the per-shard
accumulators *in shard order* so the driver can merge and finalize them.

Because each batch perturbs with its own generator and the batch -> shard
assignment is fixed by the driver, the estimates are bit-for-bit identical
across backends and worker counts; only wall-clock time changes.  A
:class:`ShardWork` is picklable end to end (protocol configuration, record
batches, ``numpy`` generators), which is what lets the multiprocessing
backend ship whole shards to worker processes and get accumulator state
dicts back (see :meth:`~repro.protocols.base.Accumulator.state_dict`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..core.domain import Domain
    from ..protocols.base import Accumulator, MarginalReleaseProtocol

__all__ = ["ShardWork", "execute_shard", "execute_shard_state", "Executor"]


@dataclass(frozen=True)
class ShardWork:
    """One shard's aggregation work: batches plus their dedicated generators.

    ``batches[i]`` is an ``(n_i, d)`` 0/1 record chunk and ``rngs[i]`` the
    child generator that chunk must be perturbed with.  The pairing is part
    of the determinism contract: whichever backend (or worker) evaluates the
    unit consumes exactly the same random streams as the serial driver.
    """

    protocol: "MarginalReleaseProtocol"
    domain: "Domain"
    batches: Tuple[np.ndarray, ...]
    rngs: Tuple[np.random.Generator, ...]

    def __post_init__(self):
        if not self.batches:
            raise ExecutionError("a shard work unit needs at least one batch")
        if len(self.batches) != len(self.rngs):
            raise ExecutionError(
                f"got {len(self.batches)} batches but {len(self.rngs)} "
                f"generators; each batch needs its own generator"
            )


def execute_shard(work: ShardWork) -> "Accumulator":
    """Encode a shard's batches and fold them into one fresh accumulator.

    The single evaluation rule shared by every backend: batches are encoded
    in assignment order, each with its own generator.
    """
    accumulator = work.protocol.accumulator(work.domain)
    for batch, rng in zip(work.batches, work.rngs):
        accumulator.update(work.protocol.encode_batch(batch, rng=rng))
    return accumulator


def execute_shard_state(work: ShardWork) -> Dict:
    """Evaluate a shard and return its picklable accumulator state.

    Module-level so multiprocessing pools can pickle it by reference; the
    driver restores the state with
    ``protocol.accumulator(domain).load_state(state)``.
    """
    return execute_shard(work).state_dict()


class Executor(abc.ABC):
    """Schedules shard work units onto some pool of workers.

    Subclasses implement :meth:`_run`; the public :meth:`run_shards` wraps it
    with validation.  Executors may hold worker pools open across calls (the
    experiment harness reuses one executor for a whole sweep), so callers
    that create one should :meth:`close` it — or use the executor as a
    context manager.
    """

    #: Machine-readable backend name (the CLI's ``--executor`` values).
    name: str = "abstract"

    def __init__(self, workers: int = 1):
        workers = int(workers)
        if workers < 1:
            raise ExecutionError(f"worker count must be >= 1, got {workers}")
        self._workers = workers

    @property
    def workers(self) -> int:
        """Maximum number of shard evaluations running concurrently."""
        return self._workers

    def run_shards(self, works: Sequence[ShardWork]) -> List["Accumulator"]:
        """Evaluate every work unit; returns the accumulators in shard order."""
        works = list(works)
        if not works:
            raise ExecutionError("run_shards needs at least one work unit")
        return self._run(works)

    @abc.abstractmethod
    def _run(self, works: List[ShardWork]) -> List["Accumulator"]:
        """Backend-specific part of :meth:`run_shards`."""

    def close(self) -> None:
        """Release any worker pool; safe to call more than once."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self._workers})"
