"""Execution backends for the streaming aggregation pipeline.

The protocols' accumulators form an exact merge algebra (associative,
commutative, integer-sum state), so aggregation parallelises without
approximation: split the record batches across shards, evaluate each shard
on any worker, merge.  This package supplies the schedulers —
:class:`SerialExecutor` (the in-process reference), :class:`ThreadExecutor`
(shared memory, GIL-releasing NumPy kernels) and :class:`ProcessExecutor`
(multiprocessing over picklable shard work units) — behind one
:class:`Executor` interface consumed by
:meth:`~repro.protocols.base.MarginalReleaseProtocol.run_streaming`.
"""

from .base import Executor, ShardWork, execute_shard, execute_shard_state
from .process import ProcessExecutor
from .registry import (
    EXECUTOR_CLASSES,
    ExecutorLike,
    available_executors,
    make_executor,
    resolve_executor,
)
from .serial import SerialExecutor
from .thread import ThreadExecutor

__all__ = [
    "Executor",
    "ShardWork",
    "execute_shard",
    "execute_shard_state",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_CLASSES",
    "ExecutorLike",
    "available_executors",
    "make_executor",
    "resolve_executor",
]
