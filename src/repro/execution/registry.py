"""Name-based construction of executors, mirroring the protocol registry.

The experiment harness and the CLI refer to execution backends by short
names (``"serial"``, ``"thread"``, ``"process"``); this module maps those
names to the implementing classes and provides the two factories the rest of
the library uses: :func:`make_executor` for explicit construction and
:func:`resolve_executor` for APIs that accept an executor *or* a name *or*
nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from ..core.exceptions import ExecutionError
from .base import Executor
from .process import ProcessExecutor
from .serial import SerialExecutor
from .thread import ThreadExecutor

__all__ = [
    "EXECUTOR_CLASSES",
    "ExecutorLike",
    "available_executors",
    "make_executor",
    "resolve_executor",
]

#: All executor classes keyed by their backend name.
EXECUTOR_CLASSES: Dict[str, Type[Executor]] = {
    cls.name: cls for cls in (SerialExecutor, ThreadExecutor, ProcessExecutor)
}

#: What APIs taking an optional executor accept: nothing (serial), a backend
#: name, or a ready-made instance.
ExecutorLike = Union[None, str, Executor]


def available_executors() -> List[str]:
    """Names of every registered execution backend."""
    return sorted(EXECUTOR_CLASSES)


def make_executor(name: str, workers: int = 1, **options) -> Executor:
    """Instantiate an execution backend by name.

    ``options`` are forwarded to the backend constructor (e.g.
    ``start_method="spawn"`` for the process backend).
    """
    try:
        cls = EXECUTOR_CLASSES[name]
    except KeyError:
        raise ExecutionError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    return cls(workers=workers, **options)


def resolve_executor(executor: ExecutorLike) -> Executor:
    """Coerce ``None``, a backend name or an instance into an executor.

    A bare name resolves to a *single-worker* instance of that backend;
    callers wanting real fan-out build one with :func:`make_executor` and
    pass the instance.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        return make_executor(executor)
    if isinstance(executor, Executor):
        return executor
    raise ExecutionError(
        f"expected an executor, a backend name or None, got {executor!r}"
    )
