"""repro — marginal release under local differential privacy.

A production-quality reproduction of Cormode, Kulkarni and Srivastava,
"Marginal Release Under Local Differential Privacy" (SIGMOD 2018).

The public API re-exports the pieces a typical user needs:

* the domain/marginal substrate (:class:`Domain`, :class:`MarginalTable`),
* the privacy budget (:class:`PrivacyBudget`),
* the six protocols (``InpRR``, ``InpPS``, ``InpHT``, ``MargRR``, ``MargPS``,
  ``MargHT``) plus the baselines (``InpEM``, ``InpOLH``, ``InpHTCMS``),
* synthetic datasets standing in for the paper's evaluation data, and
* the downstream analyses (chi-squared association tests, Chow–Liu trees and
  tree-structured Bayesian models).

Quickstart::

    import numpy as np
    from repro import InpHT, PrivacyBudget, make_taxi_dataset

    rng = np.random.default_rng(7)
    data = make_taxi_dataset(100_000, rng=rng)
    protocol = InpHT(PrivacyBudget(np.log(3)), max_width=2)
    estimator = protocol.run(data, rng=rng)
    print(estimator.query(["CC", "Tip"]))
"""

from .analysis import (
    AssociationComparison,
    ChowLiuTree,
    TreeBayesianModel,
    chi_squared_statistic,
    compare_association_tests,
    correlation_matrix,
    fit_chow_liu_tree,
    fit_tree_model,
    mutual_information,
    pairwise_mutual_information,
    private_pairwise_mutual_information,
    test_independence,
)
from .core import (
    Domain,
    MarginalTable,
    MarginalWorkload,
    PrivacyBudget,
    ReproError,
    ensure_rng,
    marginal_from_indices,
    marginal_operator,
    total_variation_distance,
)
from .datasets import (
    BinaryDataset,
    MovieLensDataGenerator,
    TaxiDataGenerator,
    make_movielens_dataset,
    make_taxi_dataset,
    skewed_dataset,
    uniform_dataset,
)
from .protocols import (
    Accumulator,
    BASELINE_PROTOCOL_NAMES,
    CORE_PROTOCOL_NAMES,
    InpEM,
    InpHT,
    InpHTCMS,
    InpOLH,
    InpPS,
    InpRR,
    MargHT,
    MargPS,
    MargRR,
    MarginalEstimator,
    MarginalReleaseProtocol,
    available_protocols,
    make_protocol,
)
from .execution import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    make_executor,
)
from .extensions import InpES
from .heavyhitters import (
    DiscoveryResult,
    HeavyHitter,
    HeavyHitterEstimator,
    HeavyHitters,
    exact_top_k,
    precision_recall,
)
from .service import (
    AggregationSession,
    ProtocolSpec,
    decode_reports,
    encode_reports,
    iter_report_frames,
)
from .postprocess import (
    SimplexProjectedEstimator,
    clip_and_normalize,
    project_to_simplex,
)
from .theory import table2_summary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Domain",
    "PrivacyBudget",
    "MarginalTable",
    "MarginalWorkload",
    "marginal_operator",
    "marginal_from_indices",
    "total_variation_distance",
    "ensure_rng",
    "ReproError",
    # datasets
    "BinaryDataset",
    "make_taxi_dataset",
    "TaxiDataGenerator",
    "make_movielens_dataset",
    "MovieLensDataGenerator",
    "uniform_dataset",
    "skewed_dataset",
    # protocols
    "MarginalReleaseProtocol",
    "Accumulator",
    "MarginalEstimator",
    "InpRR",
    "InpPS",
    "InpHT",
    "MargRR",
    "MargPS",
    "MargHT",
    "InpEM",
    "InpOLH",
    "InpHTCMS",
    "make_protocol",
    "available_protocols",
    "CORE_PROTOCOL_NAMES",
    "BASELINE_PROTOCOL_NAMES",
    # analysis
    "chi_squared_statistic",
    "test_independence",
    "compare_association_tests",
    "AssociationComparison",
    "correlation_matrix",
    "mutual_information",
    "pairwise_mutual_information",
    "private_pairwise_mutual_information",
    "ChowLiuTree",
    "fit_chow_liu_tree",
    "TreeBayesianModel",
    "fit_tree_model",
    # collection service
    "ProtocolSpec",
    "AggregationSession",
    "encode_reports",
    "decode_reports",
    "iter_report_frames",
    # execution backends
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "available_executors",
    # extensions and post-processing
    "InpES",
    "SimplexProjectedEstimator",
    "project_to_simplex",
    "clip_and_normalize",
    # heavy-hitter discovery
    "HeavyHitters",
    "HeavyHitterEstimator",
    "HeavyHitter",
    "DiscoveryResult",
    "exact_top_k",
    "precision_recall",
    # theory
    "table2_summary",
]
