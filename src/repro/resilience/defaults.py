"""The one table of resilience defaults.

Every failure-handling constant that used to live inline in
``loadgen.py``, ``supervisor.py``, or ``pull.py`` now lives here, with
its rationale.  Change a value in this table and every consumer —
:class:`~repro.server.LoadGenerator`, the topology supervisor, the
fan-in ``PULL`` client, and the CLI flags — follows.

==========================  =========  ==================================
Constant                    Value      Why
==========================  =========  ==================================
DEFAULT_MAX_RETRIES         3          One first attempt plus three
                                       retries rides out a collector
                                       restart (~2s) without masking a
                                       genuinely dead target for long.
DEFAULT_BASE_DELAY          0.2 s      First backoff roughly one
                                       event-loop scheduling quantum
                                       above a localhost reconnect.
DEFAULT_MAX_DELAY           5.0 s      Caps exponential growth so a
                                       deadline-free loop still probes a
                                       recovering target every few
                                       seconds.
DEFAULT_GROWTH              exponential  Doubling spreads load fastest
                                       when many clients hit one dead
                                       collector.
DEFAULT_JITTER              full       Full jitter (uniform on
                                       ``[0, delay]``) is the classic
                                       thundering-herd fix.
DEFAULT_DEADLINE            None       Retry loops are attempt-bounded
                                       by default; deployments opt into
                                       wall-clock bounds.
DEFAULT_CONNECT_TIMEOUT     10.0 s     First contact tolerates a slow
                                       fleet spawn (CI machines).
DEFAULT_IO_TIMEOUT          30.0 s     Per-read silence bound during an
                                       established exchange.
DEFAULT_PULL_TIMEOUT        10.0 s     One control-plane PULL round
                                       trip, state payload included.
BREAKER_FAILURE_THRESHOLD   5          Minimum failures before the rate
                                       is consulted; a single blip on a
                                       quiet target must not trip.
BREAKER_FAILURE_RATE        0.5        Half the recent calls failing
                                       means the target is down, not
                                       unlucky.
BREAKER_WINDOW_SECONDS      30.0 s     Rolling window the rate is
                                       measured over.
BREAKER_COOLDOWN_SECONDS    1.0 s      Open hold-off before the
                                       half-open probe; matches the
                                       supervisor restart latency.
BREAKER_HALF_OPEN_PROBES    1          One probe decides recovery.
WATCH_INTERVAL_SECONDS      0.05 s     Supervisor health-watch cadence
                                       (was a private constant in
                                       ``supervisor.py``).
COUNTER_POLL_SECONDS        0.01 s     Multi-process worker poll of the
                                       shared report counter; tighter
                                       than the health watch because it
                                       bounds shutdown latency after the
                                       report target is reached (was a
                                       private constant in
                                       ``multiproc.py``).
CONNECT_POLL_SECONDS        0.05 s     Client reconnect poll while a
                                       target's socket is not accepting
                                       (was inline in ``_connect``).
==========================  =========  ==================================
"""

from __future__ import annotations

from .policies import CircuitBreakerPolicy, ResilienceConfig, RetryPolicy, TimeoutPolicy

DEFAULT_MAX_RETRIES = 3
DEFAULT_BASE_DELAY = 0.2
DEFAULT_MAX_DELAY = 5.0
DEFAULT_GROWTH = "exponential"
DEFAULT_JITTER = "full"
DEFAULT_DEADLINE = None

DEFAULT_CONNECT_TIMEOUT = 10.0
DEFAULT_IO_TIMEOUT = 30.0
DEFAULT_PULL_TIMEOUT = 10.0

BREAKER_FAILURE_THRESHOLD = 5
BREAKER_FAILURE_RATE = 0.5
BREAKER_WINDOW_SECONDS = 30.0
BREAKER_COOLDOWN_SECONDS = 1.0
BREAKER_HALF_OPEN_PROBES = 1

WATCH_INTERVAL_SECONDS = 0.05
COUNTER_POLL_SECONDS = 0.01
CONNECT_POLL_SECONDS = 0.05


def default_retry_policy() -> RetryPolicy:
    return RetryPolicy(
        max_retries=DEFAULT_MAX_RETRIES,
        base_delay=DEFAULT_BASE_DELAY,
        max_delay=DEFAULT_MAX_DELAY,
        growth=DEFAULT_GROWTH,
        jitter=DEFAULT_JITTER,
        deadline=DEFAULT_DEADLINE,
    )


def default_timeout_policy() -> TimeoutPolicy:
    return TimeoutPolicy(
        connect=DEFAULT_CONNECT_TIMEOUT,
        io=DEFAULT_IO_TIMEOUT,
        pull=DEFAULT_PULL_TIMEOUT,
    )


def default_breaker_policy() -> CircuitBreakerPolicy:
    return CircuitBreakerPolicy(
        failure_threshold=BREAKER_FAILURE_THRESHOLD,
        failure_rate=BREAKER_FAILURE_RATE,
        window_seconds=BREAKER_WINDOW_SECONDS,
        cooldown_seconds=BREAKER_COOLDOWN_SECONDS,
        half_open_probes=BREAKER_HALF_OPEN_PROBES,
    )


def default_resilience_config() -> ResilienceConfig:
    return ResilienceConfig(
        retry=default_retry_policy(),
        timeouts=default_timeout_policy(),
        breaker=default_breaker_policy(),
    )
