"""Durable client-side report spooling (store-and-forward).

A :class:`ReportSpool` is an append-only frame log a
:class:`~repro.server.LoadGenerator` writes *before* first transmitting a
report group, plus a commit cursor appended once the group is
acknowledged.  If the client process dies mid-run, a restarted client
opens the same spool and replays exactly the recorded frame bytes for
every uncommitted group — under the *same* idempotency token, so a
durable-ACK collector that already folded the group simply re-ACKs it and
no report is ever double-counted.  Committed groups replay as their
recorded acknowledgement counts without touching the network.

Log format (little-endian, one record at a time; data records are
written and fsync'd before the group is allowed on the wire, commit
markers are buffered and written out at the next sync or at close —
never fsync'd — because losing one only causes a harmless idempotent
replay)::

    record   := magic kind key payload digest
    magic    := b"SPL1"
    kind     := b"D" (data: a group's frames) | b"C" (commit: its acks)
    key      := u32 length + UTF-8 idempotency token
    payload  := kind D: u32 frame count, then per frame u32 length + bytes
                kind C: u32 length + JSON acknowledgement counts
    digest   := SHA-256 over magic..payload (32 bytes)

Recovery tolerates exactly one *torn tail*: a final record that is
truncated or digest-broken (the crash happened mid-append) is discarded
and the file truncated back to the last good record.  Damage anywhere
else — bad magic, or a digest mismatch with valid records after it —
means the log itself is untrustworthy and raises
:class:`~repro.core.exceptions.SpoolError` instead of guessing.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import SpoolError
from ..observability import get_registry, trace

__all__ = ["ReportSpool", "SPOOL_MAGIC"]

_SPOOL_COUNTERS = None


def _spool_counters():
    """Lazy spool telemetry on the process registry (created once)."""
    global _SPOOL_COUNTERS
    if _SPOOL_COUNTERS is None:
        registry = get_registry()
        _SPOOL_COUNTERS = (
            registry.counter(
                "repro_spool_records_total",
                "Records appended to client spools, by kind.",
                labels=("kind",),
            ),
            registry.counter(
                "repro_spool_bytes_total",
                "Bytes appended to client spools (record + digest).",
            ),
        )
    return _SPOOL_COUNTERS

SPOOL_MAGIC = b"SPL1"
_KIND_DATA = b"D"
_KIND_COMMIT = b"C"
_U32 = struct.Struct("<I")
_DIGEST_SIZE = 32


class _Torn(Exception):
    """Internal: the record at this offset is an incomplete tail write."""


class ReportSpool:
    """Append-only durable log of report groups and their commits.

    Parameters
    ----------
    path:
        The spool file.  Created (with parents) if absent; an existing
        file is scanned so :meth:`pending_groups` /
        :meth:`committed_groups` reflect the previous run.
    fsync:
        When ``True`` (the default) every data append is written and
        fsync'd before returning — the durability the replay contract
        depends on.  Benchmarks may disable it to measure the pure
        format overhead.
    """

    def __init__(self, path: str, *, fsync: bool = True):
        self._path = str(path)
        self._fsync = bool(fsync)
        self._groups: Dict[str, List[bytes]] = {}
        self._commits: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self._buffer = bytearray()
        self._closed = False
        # The file itself is opened lazily, on the first write-out: a
        # fresh spool costs no file creation until a record actually
        # needs disk, and the create, the write, and the fsync then
        # collapse into a single sync() call (see append_group).
        self._fh = None
        parent = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(parent, exist_ok=True)
        self._recover()

    # ------------------------------------------------------------------
    # recovery

    def _recover(self) -> None:
        if not os.path.exists(self._path):
            return
        with open(self._path, "rb") as fh:
            blob = fh.read()
        offset = 0
        good_end = 0
        while offset < len(blob):
            try:
                kind, key, payload, next_offset = self._parse_record(blob, offset)
            except _Torn:
                break
            except SpoolError as exc:
                raise SpoolError(
                    f"report spool {self._path} is corrupted at byte "
                    f"{offset}: {exc}"
                ) from exc
            self._apply(kind, key, payload, offset)
            offset = next_offset
            good_end = next_offset
        if good_end < len(blob):
            # Torn tail from a crash mid-append: drop it so the next
            # append starts on a record boundary.
            with open(self._path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())

    def _parse_record(
        self, blob: bytes, offset: int
    ) -> Tuple[bytes, str, bytes, int]:
        def take(n: int) -> bytes:
            nonlocal offset
            if offset + n > len(blob):
                raise _Torn()
            chunk = blob[offset : offset + n]
            offset += n
            return chunk

        start = offset
        magic = take(4)
        if magic != SPOOL_MAGIC:
            raise SpoolError(
                f"bad record magic {magic!r} (expected {SPOOL_MAGIC!r})"
            )
        kind = take(1)
        if kind not in (_KIND_DATA, _KIND_COMMIT):
            raise SpoolError(f"unknown record kind {kind!r}")
        (key_len,) = _U32.unpack(take(4))
        key_bytes = take(key_len)
        if kind == _KIND_DATA:
            (frame_count,) = _U32.unpack(take(4))
            for _ in range(frame_count):
                (frame_len,) = _U32.unpack(take(4))
                take(frame_len)
        else:
            (json_len,) = _U32.unpack(take(4))
            take(json_len)
        payload = blob[start + 4 + 1 + 4 + key_len : offset]
        body = blob[start:offset]
        digest = take(_DIGEST_SIZE)
        if hashlib.sha256(body).digest() != digest:
            if offset >= len(blob):
                # Digest-broken final record: a torn write, not damage.
                raise _Torn()
            raise SpoolError("record digest mismatch (mid-log damage)")
        try:
            key = key_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SpoolError(f"record key is not UTF-8: {exc}") from exc
        return kind, key, payload, offset

    def _apply(self, kind: bytes, key: str, payload: bytes, offset: int) -> None:
        if kind == _KIND_DATA:
            frames: List[bytes] = []
            pos = 4
            (frame_count,) = _U32.unpack(payload[:4])
            for _ in range(frame_count):
                (frame_len,) = _U32.unpack(payload[pos : pos + 4])
                pos += 4
                frames.append(payload[pos : pos + frame_len])
                pos += frame_len
            if key not in self._groups:
                self._order.append(key)
            self._groups[key] = frames
        else:
            (json_len,) = _U32.unpack(payload[:4])
            try:
                counts = json.loads(payload[4 : 4 + json_len].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SpoolError(
                    f"commit record at byte {offset} holds invalid JSON: {exc}"
                ) from exc
            if not isinstance(counts, dict):
                raise SpoolError(
                    f"commit record at byte {offset} must hold a JSON "
                    f"object, got {type(counts).__name__}"
                )
            self._commits[key] = counts

    # ------------------------------------------------------------------
    # appends

    def _append(
        self, kind: bytes, key: str, payload: bytes, sync: bool = True
    ) -> None:
        key_bytes = key.encode("utf-8")
        body = b"".join(
            (SPOOL_MAGIC, kind, _U32.pack(len(key_bytes)), key_bytes, payload)
        )
        self._buffer += body + hashlib.sha256(body).digest()
        records, append_bytes = _spool_counters()
        records.labels(kind="data" if kind == _KIND_DATA else "commit").inc()
        append_bytes.inc(len(body) + _DIGEST_SIZE)
        if sync:
            self.sync()

    def append_group(
        self, key: str, frames: Sequence[bytes], *, sync: bool = True
    ) -> None:
        """Durably record a group's frames before they go on the wire.

        The default performs the group's entire disk cost — the lazy
        file creation, one write, one fsync — in a single :meth:`sync`.
        ``sync=False`` only buffers the record in memory for a caller
        that wants to batch several records into a later sync; the
        groups must not hit the wire until that sync returns.
        """
        if key in self._groups:
            raise SpoolError(
                f"group {key!r} is already spooled in {self._path}"
            )
        frames = [bytes(frame) for frame in frames]
        payload = b"".join(
            [_U32.pack(len(frames))]
            + [_U32.pack(len(frame)) + frame for frame in frames]
        )
        self._append(_KIND_DATA, key, payload, sync=sync)
        self._groups[key] = frames
        self._order.append(key)

    def sync(self) -> None:
        """Write out every buffered record, then fsync (see ``append_group``).

        This is the only method that touches the disk on the append path
        — including the lazy creation of the spool file itself — so the
        entire write-side cost is a handful of syscalls in one place.
        """
        try:
            with trace.span("spool.sync") as span:
                span.annotate(bytes=len(self._buffer), fsync=self._fsync)
                if self._buffer:
                    if self._fh is None:
                        self._fh = open(self._path, "ab")
                    self._fh.write(self._buffer)
                    self._buffer = bytearray()
                    self._fh.flush()
                if self._fsync and self._fh is not None:
                    os.fsync(self._fh.fileno())
        except OSError as exc:
            raise SpoolError(
                f"cannot sync report spool {self._path}: {exc}"
            ) from exc

    def commit_group(self, key: str, counts: Dict[str, Any]) -> None:
        """Durably record a group's acknowledgement so replay skips it."""
        if key not in self._groups:
            raise SpoolError(
                f"cannot commit unknown group {key!r} in {self._path}"
            )
        if key in self._commits:
            raise SpoolError(
                f"group {key!r} is already committed in {self._path}"
            )
        blob = json.dumps(counts, sort_keys=True).encode("utf-8")
        # Commit markers defer their write to the next sync() or to
        # close(): a marker lost in a crash merely makes the group look
        # pending, and a pending replay is idempotent (the collector
        # re-ACKs the recorded token), so durability buys nothing but
        # latency here.  Data records, in contrast, must be durable
        # before their frames hit the wire.
        self._append(
            _KIND_COMMIT, key, _U32.pack(len(blob)) + blob, sync=False
        )
        self._commits[key] = dict(counts)

    # ------------------------------------------------------------------
    # inspection

    @property
    def path(self) -> str:
        return self._path

    def pending_groups(self) -> Dict[str, List[bytes]]:
        """Spooled-but-uncommitted groups, in append order."""
        return {
            key: list(self._groups[key])
            for key in self._order
            if key not in self._commits
        }

    def committed_groups(self) -> Dict[str, Dict[str, Any]]:
        """Committed groups and their recorded acknowledgement counts."""
        return {key: dict(counts) for key, counts in self._commits.items()}

    def frames_for(self, key: str) -> Optional[List[bytes]]:
        frames = self._groups.get(key)
        return list(frames) if frames is not None else None

    def __len__(self) -> int:
        return len(self._groups)

    def close(self) -> None:
        # Write out anything still buffered — in practice only commit
        # markers, whose appends defer their write — but never fsync:
        # losing a commit marker merely makes the group look pending,
        # and a pending replay is idempotent, not damage.  Durability of
        # the final write is left to the kernel.
        if self._closed:
            return
        self._closed = True
        try:
            if self._buffer:
                if self._fh is None:
                    self._fh = open(self._path, "ab")
                self._fh.write(self._buffer)
                self._buffer = bytearray()
        except OSError as exc:
            raise SpoolError(
                f"cannot write report spool {self._path} at close: {exc}"
            ) from exc
        finally:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "ReportSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        pending = len(self._groups) - len(self._commits)
        return (
            f"ReportSpool({self._path!r}, groups={len(self._groups)}, "
            f"pending={pending})"
        )
