"""Composable failure-handling policies for every networked retry site.

Before this module, each retry loop in the codebase carried its own inline
constants — a linear backoff here, a hard-coded ``sleep(0.05)`` there.
The three policy objects below are the single vocabulary every site now
speaks:

* :class:`RetryPolicy` — how many times to retry and how long to wait
  between attempts.  Exponential (or linear) backoff with optional *full
  jitter* (each delay drawn uniformly from ``[0, computed]``, the classic
  thundering-herd fix), capped per-delay by ``max_delay`` and in total by
  an optional ``deadline``.
* :class:`TimeoutPolicy` — the connect / per-read / pull timeouts one
  exchange is allowed to consume.
* :class:`CircuitBreakerPolicy` / :class:`CircuitBreaker` — a per-target
  failure-rate breaker.  ``closed`` passes traffic; enough failures within
  the rolling window trips it ``open`` (every call refused instantly, so a
  dying collector cannot stall the whole fleet on connect timeouts); after
  ``cooldown_seconds`` it goes ``half-open`` and admits a limited number
  of probes — a probe success closes it, a probe failure re-opens it.

:class:`ResilienceConfig` bundles the three into one JSON-round-trippable
object so a deployment can pin them in a topology manifest or CLI flags,
exactly like a :class:`~repro.service.ProtocolSpec` pins the protocol.
The default values live in one documented table in
:mod:`repro.resilience.defaults`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from ..core.exceptions import CircuitOpenError, ProtocolConfigurationError
from ..observability import get_registry

__all__ = [
    "RetryPolicy",
    "TimeoutPolicy",
    "CircuitBreakerPolicy",
    "CircuitBreaker",
    "ResilienceConfig",
]

_BREAKER_METRICS = None


def _breaker_metrics():
    """Lazy breaker telemetry on the process registry (created once)."""
    global _BREAKER_METRICS
    if _BREAKER_METRICS is None:
        registry = get_registry()
        _BREAKER_METRICS = (
            registry.counter(
                "repro_breaker_transitions_total",
                "Circuit breaker state transitions, by edge.",
                labels=("transition",),
            ),
            registry.gauge(
                "repro_breaker_state",
                "Breakers currently in each state (one 0/1 gauge per "
                "breaker per state; merging sums them fleet-wide).",
                labels=("state",),
            ),
        )
    return _BREAKER_METRICS

_GROWTHS = ("exponential", "linear")
_JITTERS = ("full", "none")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for retrying one operation against one target.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt (``0`` means try exactly once).
    base_delay:
        Seconds before the first retry (the unit the growth rule scales).
    max_delay:
        Per-retry ceiling on the computed delay.
    growth:
        ``"exponential"`` doubles the delay every retry
        (``base * 2**(attempt-1)``); ``"linear"`` grows it arithmetically
        (``base * attempt``) — the legacy load-generator schedule.
    jitter:
        ``"full"`` draws each sleep uniformly from ``[0, delay]`` so a
        thousand clients retrying the same dead collector do not
        synchronize; ``"none"`` sleeps the computed delay exactly
        (deterministic, what the fault-injection tests pin).
    deadline:
        Optional cap on the *total* seconds a retry loop may spend
        (attempt time plus sleeps); once exceeded, :meth:`should_retry`
        says stop regardless of attempts left.
    """

    max_retries: int = 3
    base_delay: float = 0.2
    max_delay: float = 5.0
    growth: str = "exponential"
    jitter: str = "full"
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ProtocolConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0:
            raise ProtocolConfigurationError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.max_delay < self.base_delay:
            raise ProtocolConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if self.growth not in _GROWTHS:
            raise ProtocolConfigurationError(
                f"growth must be one of {_GROWTHS}, got {self.growth!r}"
            )
        if self.jitter not in _JITTERS:
            raise ProtocolConfigurationError(
                f"jitter must be one of {_JITTERS}, got {self.jitter!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ProtocolConfigurationError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ProtocolConfigurationError(
                f"retry attempts are 1-based, got {attempt}"
            )
        if self.growth == "exponential":
            raw = self.base_delay * (2.0 ** (attempt - 1))
        else:
            raw = self.base_delay * attempt
        capped = min(raw, self.max_delay)
        if self.jitter == "full" and capped > 0:
            generator = rng if rng is not None else np.random.default_rng()
            return float(generator.uniform(0.0, capped))
        return capped

    def should_retry(self, attempt: int, started: float, now: Optional[float] = None) -> bool:
        """Whether retry number ``attempt`` (1-based) may still run.

        ``started`` is the ``time.monotonic()`` stamp of the first attempt;
        the deadline (when set) is measured against it.
        """
        if attempt > self.max_retries:
            return False
        if self.deadline is not None:
            now = time.monotonic() if now is None else now
            if now - started >= self.deadline:
                return False
        return True

    def delays(self, rng: Optional[np.random.Generator] = None) -> Iterator[float]:
        """The full backoff schedule, one sleep per allowed retry."""
        for attempt in range(1, self.max_retries + 1):
            yield self.delay(attempt, rng)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_retries": self.max_retries,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "growth": self.growth,
            "jitter": self.jitter,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RetryPolicy":
        if not isinstance(payload, dict):
            raise ProtocolConfigurationError(
                f"a RetryPolicy dict is required, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "max_retries", "base_delay", "max_delay", "growth", "jitter",
            "deadline",
        }
        if unknown:
            raise ProtocolConfigurationError(
                f"unknown RetryPolicy field(s): {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class TimeoutPolicy:
    """How long each stage of a collection exchange may take.

    Attributes
    ----------
    connect:
        Grace window for a target's *first* contact (covers the CI shape
        where a fleet starts while the collector is still binding).
    io:
        Per-read silence bound once a connection is up (a server that
        sends nothing for this long is treated as gone).
    pull:
        End-to-end bound on one control-plane ``PULL`` exchange.
    """

    connect: float = 10.0
    io: float = 30.0
    pull: float = 10.0

    def __post_init__(self):
        for name in ("connect", "io", "pull"):
            value = getattr(self, name)
            if value <= 0:
                raise ProtocolConfigurationError(
                    f"TimeoutPolicy.{name} must be > 0 seconds, got {value}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {"connect": self.connect, "io": self.io, "pull": self.pull}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TimeoutPolicy":
        if not isinstance(payload, dict):
            raise ProtocolConfigurationError(
                f"a TimeoutPolicy dict is required, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"connect", "io", "pull"}
        if unknown:
            raise ProtocolConfigurationError(
                f"unknown TimeoutPolicy field(s): {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Tuning of one :class:`CircuitBreaker` (the per-target instances are
    stamped out of this template with :meth:`build`).

    Attributes
    ----------
    failure_threshold:
        Minimum failures inside the window before the rate is even
        consulted (a single blip on a quiet target must not trip it).
    failure_rate:
        Fraction of calls inside the window that must have failed to trip
        the breaker open.
    window_seconds:
        Length of the rolling outcome window.
    cooldown_seconds:
        How long an open breaker refuses calls before going half-open.
    half_open_probes:
        Concurrent trial calls admitted while half-open.
    """

    failure_threshold: int = 5
    failure_rate: float = 0.5
    window_seconds: float = 30.0
    cooldown_seconds: float = 1.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ProtocolConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not 0 < self.failure_rate <= 1:
            raise ProtocolConfigurationError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.window_seconds <= 0:
            raise ProtocolConfigurationError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if self.cooldown_seconds <= 0:
            raise ProtocolConfigurationError(
                f"cooldown_seconds must be > 0, got {self.cooldown_seconds}"
            )
        if self.half_open_probes < 1:
            raise ProtocolConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )

    def build(
        self, name: str = "target", clock: Callable[[], float] = time.monotonic
    ) -> "CircuitBreaker":
        return CircuitBreaker(self, name=name, clock=clock)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "failure_threshold": self.failure_threshold,
            "failure_rate": self.failure_rate,
            "window_seconds": self.window_seconds,
            "cooldown_seconds": self.cooldown_seconds,
            "half_open_probes": self.half_open_probes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CircuitBreakerPolicy":
        if not isinstance(payload, dict):
            raise ProtocolConfigurationError(
                f"a CircuitBreakerPolicy dict is required, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "failure_threshold", "failure_rate", "window_seconds",
            "cooldown_seconds", "half_open_probes",
        }
        if unknown:
            raise ProtocolConfigurationError(
                f"unknown CircuitBreakerPolicy field(s): {sorted(unknown)}"
            )
        return cls(**payload)


class CircuitBreaker:
    """One target's closed / open / half-open failure gate.

    Call :meth:`check` before an attempt (raises :class:`CircuitOpenError`
    while open), then :meth:`record_success` or :meth:`record_failure`
    with the outcome.  The clock is injectable so the state machine is
    unit-testable without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        policy: CircuitBreakerPolicy,
        *,
        name: str = "target",
        clock: Callable[[], float] = time.monotonic,
    ):
        self._policy = policy
        self._name = str(name)
        self._clock = clock
        self._state = self.CLOSED
        self._outcomes: list = []  # (timestamp, ok) inside the window
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._trips = 0
        _breaker_metrics()[1].labels(state=self.CLOSED).inc()

    def _transition(self, new_state: str) -> None:
        if new_state == self._state:
            return
        counter, gauge = _breaker_metrics()
        counter.labels(transition=f"{self._state}->{new_state}").inc()
        gauge.labels(state=self._state).dec()
        gauge.labels(state=new_state).inc()
        self._state = new_state

    @property
    def policy(self) -> CircuitBreakerPolicy:
        return self._policy

    @property
    def name(self) -> str:
        return self._name

    @property
    def trips(self) -> int:
        """How many times this breaker has opened (telemetry)."""
        return self._trips

    @property
    def state(self) -> str:
        self._advance()
        return self._state

    def _advance(self) -> None:
        if self._state == self.OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self._policy.cooldown_seconds:
                self._transition(self.HALF_OPEN)
                self._probes_in_flight = 0

    def _prune(self, now: float) -> None:
        horizon = now - self._policy.window_seconds
        self._outcomes = [
            entry for entry in self._outcomes if entry[0] >= horizon
        ]

    def time_until_retry(self) -> float:
        """Seconds until an open breaker admits its half-open probe."""
        if self._state != self.OPEN or self._opened_at is None:
            return 0.0
        remaining = (
            self._policy.cooldown_seconds - (self._clock() - self._opened_at)
        )
        return max(0.0, remaining)

    def allow(self) -> bool:
        """Whether a call may proceed right now (non-raising form)."""
        self._advance()
        if self._state == self.CLOSED:
            return True
        if self._state == self.HALF_OPEN:
            if self._probes_in_flight < self._policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False
        return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker for {self._name} is {self._state} "
                f"(retry in {self.time_until_retry():.2f}s)",
                retry_after=self.time_until_retry(),
            )

    def record_success(self) -> None:
        now = self._clock()
        if self._state == self.HALF_OPEN:
            # The probe came back healthy: close and forget the bad spell.
            self._transition(self.CLOSED)
            self._outcomes = []
            self._probes_in_flight = 0
            return
        self._outcomes.append((now, True))
        self._prune(now)

    def record_failure(self) -> None:
        now = self._clock()
        if self._state == self.HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._transition(self.OPEN)
            self._opened_at = now
            self._trips += 1
            self._probes_in_flight = 0
            return
        self._outcomes.append((now, False))
        self._prune(now)
        failures = sum(1 for _, ok in self._outcomes if not ok)
        if failures < self._policy.failure_threshold:
            return
        rate = failures / len(self._outcomes)
        if rate >= self._policy.failure_rate and self._state == self.CLOSED:
            self._transition(self.OPEN)
            self._opened_at = now
            self._trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self._name}, state={self.state}, "
            f"trips={self._trips})"
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """The full failure-handling contract of one deployment, in one object.

    Round-trips through ``to_dict``/``from_dict`` so it can ride a
    topology manifest (the way a :class:`~repro.service.ProtocolSpec`
    rides it) or be assembled from CLI flags; every field defaults to the
    table in :mod:`repro.resilience.defaults`.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeouts: TimeoutPolicy = field(default_factory=TimeoutPolicy)
    breaker: Optional[CircuitBreakerPolicy] = field(
        default_factory=CircuitBreakerPolicy
    )

    def with_overrides(self, **kwargs) -> "ResilienceConfig":
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "retry": self.retry.to_dict(),
            "timeouts": self.timeouts.to_dict(),
            "breaker": self.breaker.to_dict() if self.breaker else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResilienceConfig":
        if not isinstance(payload, dict):
            raise ProtocolConfigurationError(
                f"a ResilienceConfig dict is required, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - {"retry", "timeouts", "breaker"}
        if unknown:
            raise ProtocolConfigurationError(
                f"unknown ResilienceConfig field(s): {sorted(unknown)}"
            )
        return cls(
            retry=RetryPolicy.from_dict(payload.get("retry", {})),
            timeouts=TimeoutPolicy.from_dict(payload.get("timeouts", {})),
            breaker=(
                CircuitBreakerPolicy.from_dict(payload["breaker"])
                if payload.get("breaker") is not None
                else None
            ),
        )
