"""Reusable chaos primitives for fault-injection tests and smoke jobs.

These injectors are deliberately generic — pure stdlib + numpy, no
imports from the server or topology tiers — so any test layer (the
``tests/topology`` harness, the CI ``chaos-smoke`` job, ad-hoc repro
scripts) can compose them:

* :func:`flip_file_bit` — flip one bit anywhere in a file (simulates
  media corruption; on an ``.npz`` this usually lands in member data and
  trips the zip CRC on read).
* :func:`corrupt_checkpoint_array` — the nastier fault: repack a
  checkpoint with one byte flipped inside a state array but with *valid*
  zip structure, so only the embedded SHA-256 digest can catch it
  (silent at-rest corruption / tampering).
* :func:`enospc_on_fsync` — make every ``os.fsync`` in this process fail
  with ``ENOSPC``, the classic full-disk symptom, to prove atomic writes
  leave the previous checkpoint intact.
* :func:`deny_writes` — revoke write permission on a directory (an
  os-level, cross-process fault that surfaces as ``OSError`` on the
  writer, the same handling path as a full disk).
* :class:`SlowLinkProxy` — a local TCP forwarder that delays and chunks
  traffic, for slow-link / timeout-policy tests.
* :func:`kill_hard` — SIGKILL a process mid-operation (no cleanup
  handlers run), the client-crash primitive behind spool-replay tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import io
import os
import signal
from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = [
    "flip_file_bit",
    "corrupt_checkpoint_array",
    "enospc_on_fsync",
    "deny_writes",
    "SlowLinkProxy",
    "kill_hard",
]

PathLike = Union[str, Path]


def flip_file_bit(
    path: PathLike,
    rng: Optional[np.random.Generator] = None,
    *,
    offset: Optional[int] = None,
    bit: Optional[int] = None,
) -> int:
    """XOR one bit of ``path`` in place; returns the byte offset flipped.

    With no explicit ``offset``/``bit`` the position is drawn from
    ``rng`` (seed it for reproducible chaos runs).
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        raise ValueError(f"cannot flip a bit in empty file {path}")
    generator = rng if rng is not None else np.random.default_rng()
    position = (
        int(generator.integers(0, len(blob))) if offset is None else int(offset)
    )
    bit_index = int(generator.integers(0, 8)) if bit is None else int(bit)
    blob[position] ^= 1 << bit_index
    path.write_bytes(bytes(blob))
    return position


def corrupt_checkpoint_array(
    path: PathLike,
    array_name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Flip one byte inside a checkpoint's state array, keeping the zip valid.

    The archive is unpacked and repacked with correct zip CRCs but the
    *original* header (embedded digest included), so nothing short of the
    SHA-256 verification can notice — the exact at-rest corruption the
    integrity layer exists for.  ``array_name`` picks the member to damage
    (sans ``state__`` prefix honored either way); by default one is drawn
    from ``rng``.  Returns the name of the damaged member.
    """
    path = Path(path)
    generator = rng if rng is not None else np.random.default_rng()
    with np.load(path, allow_pickle=False) as archive:
        members = {name: archive[name] for name in archive.files}
    candidates = [name for name in members if name != "header"]
    if not candidates:
        raise ValueError(f"{path} holds no state arrays to corrupt")
    if array_name is not None:
        name = (
            array_name
            if array_name in members
            else "state__" + array_name
        )
        if name not in members:
            raise ValueError(
                f"{path} has no array {array_name!r}; members: {candidates}"
            )
    else:
        name = candidates[int(generator.integers(0, len(candidates)))]
    victim = members[name]
    raw = bytearray(victim.tobytes())
    if not raw:
        raise ValueError(f"array {name!r} in {path} is empty, nothing to flip")
    position = int(generator.integers(0, len(raw)))
    raw[position] ^= 1 << int(generator.integers(0, 8))
    members[name] = np.frombuffer(bytes(raw), dtype=victim.dtype).reshape(
        victim.shape
    )
    buffer = io.BytesIO()
    np.savez(buffer, **members)
    path.write_bytes(buffer.getvalue())
    return name


@contextlib.contextmanager
def enospc_on_fsync():
    """Within the block, every ``os.fsync`` in this process raises ENOSPC.

    The canonical full-disk failure: data was buffered but cannot be made
    durable.  Atomic checkpoint writers must abort the temp file and keep
    the previous checkpoint visible.
    """
    real_fsync = os.fsync

    def failing_fsync(fd):
        raise OSError(errno.ENOSPC, "No space left on device (injected)")

    os.fsync = failing_fsync
    try:
        yield
    finally:
        os.fsync = real_fsync


@contextlib.contextmanager
def deny_writes(directory: PathLike):
    """Revoke write permission on ``directory`` within the block.

    A cross-process fault (works on collector subprocesses too): every
    attempt to create or replace a file there fails with ``OSError``,
    exercising the same degraded path as a full disk.
    """
    directory = Path(directory)
    original_mode = directory.stat().st_mode & 0o777
    directory.chmod(0o500)
    try:
        yield
    finally:
        directory.chmod(original_mode)


class SlowLinkProxy:
    """A local TCP forwarder that throttles traffic toward a target.

    Accepts on an ephemeral local port and pumps bytes to
    ``(target_host, target_port)``, sleeping ``delay_seconds`` between
    ``chunk_bytes``-sized slices in both directions — a deterministic
    slow link for timeout-policy and io-timeout tests.

    Use as an async context manager::

        async with SlowLinkProxy("127.0.0.1", port, delay_seconds=0.2) as proxy:
            ...connect to ("127.0.0.1", proxy.port)...
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        delay_seconds: float = 0.05,
        chunk_bytes: int = 1024,
        host: str = "127.0.0.1",
    ):
        self._target = (target_host, int(target_port))
        self._delay = float(delay_seconds)
        self._chunk = int(chunk_bytes)
        self._host = host
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self) -> "SlowLinkProxy":
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _pump(self, reader, writer) -> None:
        try:
            while True:
                chunk = await reader.read(self._chunk)
                if not chunk:
                    break
                if self._delay > 0:
                    await asyncio.sleep(self._delay)
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.write_eof()

    async def _handle(self, client_reader, client_writer) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self._target
            )
        except OSError:
            client_writer.close()
            return
        try:
            await asyncio.gather(
                self._pump(client_reader, upstream_writer),
                self._pump(upstream_reader, client_writer),
            )
        finally:
            for writer in (client_writer, upstream_writer):
                with contextlib.suppress(Exception):
                    writer.close()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SlowLinkProxy":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()


def kill_hard(process) -> None:
    """SIGKILL a subprocess mid-operation (no cleanup handlers run).

    Accepts anything with a ``pid`` (``subprocess.Popen``,
    ``multiprocessing.Process``) or a bare pid.  The crash primitive
    behind client mid-spool kills: the process gets no chance to flush,
    commit, or say goodbye.
    """
    pid = getattr(process, "pid", process)
    if pid is None:
        return
    with contextlib.suppress(ProcessLookupError, OSError):
        os.kill(int(pid), signal.SIGKILL)
