"""End-to-end resilience layer: policies, spooling, integrity, coverage.

This package is the single home of the system's failure-handling
vocabulary.  It is imported by the server and topology tiers but imports
only ``repro.core`` and ``repro.theory`` itself, so it stays free of
networking dependencies and usable from any layer (including the chaos
test harness).

* :mod:`~repro.resilience.policies` — :class:`RetryPolicy` /
  :class:`TimeoutPolicy` / :class:`CircuitBreaker` and the
  :class:`ResilienceConfig` bundle that rides manifests and CLI flags.
* :mod:`~repro.resilience.defaults` — the one documented table every
  default comes from.
* :mod:`~repro.resilience.spool` — :class:`ReportSpool`, the durable
  store-and-forward log that makes clients crash-safe.
* :mod:`~repro.resilience.integrity` — checkpoint SHA-256 digests and
  corrupt-file quarantine.
* :mod:`~repro.resilience.coverage` — :class:`CoverageReport`, the
  expected/received/lost ledger behind degraded-mode finalize.
* :mod:`~repro.resilience.chaos` — reusable fault injectors for tests
  and the CI chaos-smoke job.
"""

from .coverage import (
    STATUS_LOST,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RECOVERED,
    CollectorCoverage,
    CoverageReport,
)
from .defaults import (
    default_breaker_policy,
    default_resilience_config,
    default_retry_policy,
    default_timeout_policy,
)
from .integrity import (
    DIGEST_ALGORITHM,
    checkpoint_digest,
    embed_integrity,
    quarantine_checkpoint,
    verify_integrity,
)
from .policies import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilienceConfig,
    RetryPolicy,
    TimeoutPolicy,
)
from .spool import ReportSpool

__all__ = [
    "RetryPolicy",
    "TimeoutPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "ResilienceConfig",
    "default_retry_policy",
    "default_timeout_policy",
    "default_breaker_policy",
    "default_resilience_config",
    "ReportSpool",
    "DIGEST_ALGORITHM",
    "checkpoint_digest",
    "embed_integrity",
    "verify_integrity",
    "quarantine_checkpoint",
    "CollectorCoverage",
    "CoverageReport",
    "STATUS_OK",
    "STATUS_RECOVERED",
    "STATUS_LOST",
    "STATUS_QUARANTINED",
]
