"""Coverage accounting for degraded-mode finalize.

When exactness is impossible — a collector died with no durable state, a
checkpoint was quarantined — the system still produces estimates, but
only together with a :class:`CoverageReport` that states *exactly* what
is missing: reports expected, received, and lost, per collector, plus
the theory-backed error-bound inflation the loss causes.  Loss is
measured, never ignored (Price's itemset-sketch lower bound in PAPERS.md
is the reminder that every lost report widens the error bars).

Expected counts come from the client side: each
:class:`~repro.server.LoadGenerator` records how many reports every
target acknowledged (``acked_by_target``), which stays available even
when the collector's own state is gone — that is what makes the lost
counts exact rather than estimated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.exceptions import PartialCoverageError

__all__ = [
    "CollectorCoverage",
    "CoverageReport",
    "STATUS_OK",
    "STATUS_RECOVERED",
    "STATUS_LOST",
    "STATUS_QUARANTINED",
]

#: Collector delivered everything it acknowledged.
STATUS_OK = "ok"
#: Collector died but its durable state was recovered bit-for-bit.
STATUS_RECOVERED = "recovered"
#: Collector (or its checkpoint) is gone; its reports are lost.
STATUS_LOST = "lost"
#: Checkpoint failed integrity verification and was quarantined.
STATUS_QUARANTINED = "quarantined"

_STATUSES = (STATUS_OK, STATUS_RECOVERED, STATUS_LOST, STATUS_QUARANTINED)


@dataclass(frozen=True)
class CollectorCoverage:
    """One collector's (or shard's) slice of the coverage ledger.

    ``expected`` is ``None`` when no client-side accounting exists for the
    target (then ``lost`` is unknowable and reported as ``None`` too).
    """

    collector_id: str
    expected: Optional[int]
    received: int
    status: str = STATUS_OK
    detail: str = ""

    def __post_init__(self):
        if self.status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}, got {self.status!r}"
            )
        if self.received < 0:
            raise ValueError(f"received must be >= 0, got {self.received}")
        if self.expected is not None and self.expected < 0:
            raise ValueError(f"expected must be >= 0, got {self.expected}")

    @property
    def lost(self) -> Optional[int]:
        if self.expected is None:
            return None
        return max(0, self.expected - self.received)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "collector_id": self.collector_id,
            "expected": self.expected,
            "received": self.received,
            "lost": self.lost,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class CoverageReport:
    """The full expected/received/lost ledger behind one finalize.

    Built by degraded-mode finalize paths
    (:meth:`~repro.topology.FanInAggregator.finalize` with
    ``allow_partial=True``, ``repro topo finalize --allow-partial``) and
    carried by :class:`~repro.core.exceptions.PartialCoverageError` when
    strict mode refuses instead.
    """

    collectors: List[CollectorCoverage] = field(default_factory=list)

    def add(self, coverage: CollectorCoverage) -> "CoverageReport":
        self.collectors.append(coverage)
        return self

    # ------------------------------------------------------------------
    # totals

    @property
    def expected(self) -> Optional[int]:
        """Total reports expected, or ``None`` if any part is unknown."""
        total = 0
        for entry in self.collectors:
            if entry.expected is None:
                return None
            total += entry.expected
        return total

    @property
    def received(self) -> int:
        return sum(entry.received for entry in self.collectors)

    @property
    def lost(self) -> Optional[int]:
        expected = self.expected
        if expected is None:
            return None
        return max(0, expected - self.received)

    @property
    def complete(self) -> bool:
        """Nothing is known to be missing.

        True when no collector is lost or quarantined and no entry with a
        known expectation fell short.  Unknown expectations on healthy
        collectors do not count against completeness — strict mode blocks
        on *evidence* of loss, not on missing client-side accounting.
        """
        for entry in self.collectors:
            if entry.status not in (STATUS_OK, STATUS_RECOVERED):
                return False
            if entry.lost is not None and entry.lost > 0:
                return False
        return True

    @property
    def degraded(self) -> List[CollectorCoverage]:
        """The collectors that lost reports or state."""
        return [
            entry
            for entry in self.collectors
            if entry.status in (STATUS_LOST, STATUS_QUARANTINED)
            or (entry.lost or 0) > 0
        ]

    # ------------------------------------------------------------------
    # theory

    def inflation_factor(self) -> float:
        """Multiplier on every error bound caused by the missing reports.

        The paper's bounds all scale as ``1 / sqrt(N)``
        (:func:`repro.theory.bounds.error_bound`), so finalizing over
        ``received`` instead of ``expected`` reports inflates them by
        ``sqrt(expected / received)``
        (:func:`repro.theory.bounds.coverage_inflation`).  ``1.0`` when
        nothing is missing or expectations are unknown; ``inf`` when
        every report was lost.
        """
        from ..theory.bounds import coverage_inflation

        expected = self.expected
        if expected is None or expected == 0:
            return 1.0
        return coverage_inflation(expected, self.received)

    # ------------------------------------------------------------------
    # presentation

    def to_dict(self) -> Dict[str, Any]:
        inflation = self.inflation_factor()
        return {
            "expected": self.expected,
            "received": self.received,
            "lost": self.lost,
            "complete": self.complete,
            "error_inflation": (
                None if math.isinf(inflation) else inflation
            ),
            "collectors": [entry.to_dict() for entry in self.collectors],
        }

    def summary(self) -> str:
        """Human-readable coverage table for logs and CLI output."""
        lines = []
        expected = self.expected
        lost = self.lost
        lines.append(
            f"coverage: {self.received} received / "
            f"{'unknown' if expected is None else expected} expected "
            f"({'unknown' if lost is None else lost} lost)"
        )
        inflation = self.inflation_factor()
        if inflation > 1.0:
            shown = "inf" if math.isinf(inflation) else f"{inflation:.3f}x"
            lines.append(
                f"error bounds inflated by {shown} "
                f"(bounds scale as 1/sqrt(N))"
            )
        for entry in self.collectors:
            lines.append(
                f"  {entry.collector_id}: "
                f"{entry.received}/"
                f"{'?' if entry.expected is None else entry.expected} "
                f"[{entry.status}]"
                + (f" — {entry.detail}" if entry.detail else "")
            )
        return "\n".join(lines)

    def raise_if_partial(self, context: str = "finalize") -> None:
        """Strict-mode gate: raise unless coverage is complete."""
        if self.complete:
            return
        lost = self.lost
        missing = (
            "an unknown number of reports"
            if lost is None
            else f"{lost} report(s)"
        )
        degraded = ", ".join(
            f"{entry.collector_id} [{entry.status}]"
            for entry in self.degraded
        ) or "unknown collectors"
        raise PartialCoverageError(
            f"{context} would drop {missing} (degraded: {degraded}); "
            f"pass allow_partial=True (CLI: --allow-partial) to finalize "
            f"anyway with this CoverageReport",
            coverage=self,
        )
