"""Checkpoint integrity: content digests and corrupt-file quarantine.

Every checkpoint the system writes (session ``checkpoint()`` files, the
durable-ACK ``state.npz``, topology ``STATE`` payloads — they all share
one archive layout) embeds a SHA-256 digest of its own content in the
JSON header.  ``np.savez`` stores members uncompressed (``ZIP_STORED``),
so a torn write or flipped bit either changes the array bytes — caught by
the digest — or breaks the zip structure itself — caught by the CRC and
converted to :class:`~repro.core.exceptions.WireFormatError` upstream.
Either way the restore path calls :func:`quarantine_checkpoint` instead
of folding silent garbage into an aggregation.

The digest covers the canonical JSON of the header (minus the integrity
section itself) plus every state array's name, dtype, shape, and raw
bytes, in sorted name order — i.e. exactly the facts ``restore`` will
act on, independent of zip member ordering or archive timestamps.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..core.exceptions import CheckpointIntegrityError
from ..observability import get_registry

__all__ = [
    "DIGEST_ALGORITHM",
    "checkpoint_digest",
    "embed_integrity",
    "verify_integrity",
    "quarantine_checkpoint",
]

DIGEST_ALGORITHM = "sha256"


def checkpoint_digest(
    header: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> str:
    """Hex SHA-256 over a checkpoint's semantic content.

    ``header`` is the JSON header dict (any existing ``integrity`` section
    is excluded so verification can recompute the digest from a restored
    header as-is); ``arrays`` maps state-array names (without the storage
    prefix) to their values.
    """
    core = {key: value for key, value in header.items() if key != "integrity"}
    hasher = hashlib.sha256()
    hasher.update(json.dumps(core, sort_keys=True).encode("utf-8"))
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        hasher.update(name.encode("utf-8"))
        hasher.update(array.dtype.str.encode("ascii"))
        hasher.update(repr(tuple(array.shape)).encode("ascii"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def embed_integrity(
    header: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> Dict[str, Any]:
    """Return ``header`` with its ``integrity`` section filled in."""
    stamped = dict(header)
    stamped["integrity"] = {
        "algorithm": DIGEST_ALGORITHM,
        "digest": checkpoint_digest(header, arrays),
    }
    return stamped


def verify_integrity(
    header: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
    *,
    source: str = "<checkpoint>",
    require: bool = False,
) -> bool:
    """Check a restored checkpoint's digest against its content.

    Returns ``True`` when a digest was present and matched, ``False`` when
    the header carries no integrity section (a legacy version-1 file) and
    ``require`` is off.  Raises
    :class:`~repro.core.exceptions.CheckpointIntegrityError` on any
    mismatch, unknown algorithm, or (with ``require=True``) a missing
    section.
    """
    section = header.get("integrity")
    if section is None:
        if require:
            raise CheckpointIntegrityError(
                f"checkpoint {source} carries no integrity digest but its "
                f"format version requires one"
            )
        return False
    if not isinstance(section, dict):
        raise CheckpointIntegrityError(
            f"checkpoint {source} has a malformed integrity section "
            f"(expected an object, got {type(section).__name__})"
        )
    algorithm = section.get("algorithm")
    if algorithm != DIGEST_ALGORITHM:
        raise CheckpointIntegrityError(
            f"checkpoint {source} uses unsupported digest algorithm "
            f"{algorithm!r} (this library speaks {DIGEST_ALGORITHM!r})"
        )
    recorded = section.get("digest")
    actual = checkpoint_digest(header, arrays)
    if recorded != actual:
        raise CheckpointIntegrityError(
            f"checkpoint {source} failed integrity verification: header "
            f"records {DIGEST_ALGORITHM}:{recorded} but the content hashes "
            f"to {DIGEST_ALGORITHM}:{actual} — the file was altered after "
            f"it was written"
        )
    return True


def quarantine_checkpoint(
    path: Union[str, Path], reason: str
) -> Tuple[Optional[Path], Path]:
    """Move a corrupt checkpoint aside and leave a readable report.

    The file at ``path`` is renamed to ``<path>.corrupt`` (a numeric
    suffix keeps repeated quarantines from clobbering each other) and a
    sibling ``<quarantined>.report.txt`` explains what happened, so an
    operator finds the evidence next to the gap instead of a crash dump.
    Returns ``(quarantined_path, report_path)``; the first is ``None``
    when ``path`` no longer exists (the report is still written).
    """
    get_registry().counter(
        "repro_checkpoints_quarantined_total",
        "Corrupt checkpoints moved aside instead of restored.",
    ).inc()
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    counter = 1
    while target.exists():
        target = path.with_name(f"{path.name}.corrupt.{counter}")
        counter += 1
    quarantined: Optional[Path] = None
    if path.exists():
        os.replace(path, target)
        quarantined = target
    report_base = quarantined if quarantined is not None else target
    report_path = report_base.with_name(report_base.name + ".report.txt")
    lines = [
        "corrupt checkpoint quarantined",
        f"  original:    {path}",
        f"  quarantined: {quarantined if quarantined else '(file had vanished)'}",
        f"  when:        {time.strftime('%Y-%m-%d %H:%M:%S %z')}",
        f"  reason:      {reason}",
        "",
        "The aggregation continued without this file; its reports are",
        "accounted as lost in the finalize CoverageReport.  Inspect the",
        "quarantined bytes to recover state manually if possible.",
        "",
    ]
    report_path.write_text("\n".join(lines), encoding="utf-8")
    return quarantined, report_path
