"""Dependency-free metrics core with mergeable snapshots.

Three instrument families — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — each optionally labelled, registered in a
process-local :class:`MetricsRegistry`.  A registry can be frozen into a
:class:`MetricsSnapshot` at any time; snapshots obey the same merge
algebra as the protocol accumulators (``state_dict`` round trips, an
associative and commutative :meth:`MetricsSnapshot.merge`), which is what
lets the multi-process collector fold per-worker metrics exactly like
per-worker checkpoints and the fan-in tree roll up a whole topology.

Merge semantics are additive across the board: counters and histogram
buckets sum, and gauges sum too — a deliberate restriction to *additive*
gauges (spool depth, active connections, open breakers) so the merge
stays associative.  Non-additive facts (e.g. "which breaker state") are
modelled as one 0/1 gauge per state, which sums into a fleet-wide count.

Enablement is one module-level boolean, resolved once from the
``REPRO_METRICS`` environment variable (anything but ``off``, ``0``,
``false``, ``no``, ``disabled`` means on) and flippable at runtime via
:func:`set_enabled`.  Every mutator checks it first, so a disabled
process pays one predictable branch per call site — no clock reads, no
dict updates, and never any rng interaction.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "get_registry",
    "metrics_enabled",
    "set_enabled",
]

#: Latency-shaped default histogram buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_DISABLED_VALUES = frozenset({"off", "0", "false", "no", "disabled"})


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        raw = os.environ.get("REPRO_METRICS", "on")
        self.enabled = raw.strip().lower() not in _DISABLED_VALUES


_STATE = _State()


def metrics_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _STATE.enabled


def set_enabled(flag: bool) -> None:
    """Flip instrumentation on or off process-wide (tests, benchmarks)."""
    _STATE.enabled = bool(flag)


def _label_values(
    family: "_Family", labels: Mapping[str, str]
) -> Tuple[str, ...]:
    # Hot path: pull values in declared order and let a missing name
    # raise, instead of building two sets per call just to compare keys.
    try:
        values = tuple(str(labels[name]) for name in family.label_names)
    except KeyError:
        values = None
    if values is None or len(labels) != len(family.label_names):
        raise ValueError(
            f"metric {family.name!r} takes labels "
            f"{sorted(family.label_names)}, got {sorted(labels)}"
        )
    return values


class _Family:
    """Shared machinery: a named instrument plus its labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._default = None
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child series for one label-value combination (created lazily)."""
        key = _label_values(self, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _default_child(self):
        child = self._default
        if child is None:
            if self.label_names:
                raise ValueError(
                    f"metric {self.name!r} is labelled "
                    f"{sorted(self.label_names)}; call .labels(...) first"
                )
            child = self._default = self.labels()
        return child

    def _series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Family):
    """A monotonically increasing sum (events, reports, bytes)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Family):
    """A settable level.  Merges by *sum*, so model additive quantities
    (depths, active counts, 0/1 state flags) — not arbitrary readings."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Tuple[float, ...]):
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _STATE.enabled:
            return
        # Buckets are sorted upper bounds; bisect_left finds the first
        # bound >= value, which is exactly Prometheus ``le`` semantics
        # (falling past the end lands in the trailing +Inf bucket).
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def bucket_counts(self) -> List[int]:
        return list(self._counts)


class Histogram(_Family):
    """A bucketed distribution (latencies, sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty, sorted, "
                f"and distinct, got {list(buckets)}"
            )
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count


_FAMILY_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-local home for metric families.

    Getter methods are idempotent: asking twice for the same name with a
    compatible signature returns the same family, a conflicting signature
    raises — so far-apart call sites can share series without plumbing
    objects through every constructor.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, labels: Sequence[str], **extra):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labels, **extra)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {cls.kind}"
            )
        if tuple(labels) != family.label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{list(family.label_names)}, requested {list(labels)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze every series into a mergeable, serializable snapshot."""
        data: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for key, child in family._series():
                if family.kind == "histogram":
                    value: Any = {
                        "counts": child.bucket_counts,
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    value = child.value
                series.append([list(key), value])
            entry: Dict[str, Any] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
            data[family.name] = entry
        return MetricsSnapshot(data)


class MetricsSnapshot:
    """An immutable point-in-time copy of a registry's series.

    Follows the accumulator contract: :meth:`state_dict` /
    :meth:`from_state_dict` round-trip through JSON, and :meth:`merge` is
    associative and commutative (counters, gauges, and histogram buckets
    all sum), so snapshots from workers, collectors, and whole subtrees
    combine in any grouping to the same totals.
    """

    def __init__(self, families: Dict[str, Any]):
        self._families = families

    @property
    def families(self) -> Dict[str, Any]:
        return self._families

    def state_dict(self) -> Dict[str, Any]:
        return {"format": "repro-metrics/v1", "families": self._families}

    def to_json(self) -> str:
        return json.dumps(self.state_dict(), sort_keys=True)

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "MetricsSnapshot":
        if state.get("format") != "repro-metrics/v1":
            raise ValueError(
                "not a metrics snapshot: expected format 'repro-metrics/v1', "
                f"got {state.get('format')!r}"
            )
        families = state.get("families")
        if not isinstance(families, dict):
            raise ValueError("metrics snapshot 'families' must be an object")
        return cls(json.loads(json.dumps(families)))

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_state_dict(json.loads(text))

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls({})

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Any]:
        """One series' value (histograms: the ``counts/sum/count`` dict)."""
        entry = self._families.get(name)
        if entry is None:
            return None
        wanted = [str(labels.get(label, "")) for label in entry["labels"]] if labels else []
        for key, value in entry["series"]:
            if list(key) == wanted:
                return value
        return None

    def total(self, name: str) -> float:
        """Sum of one counter/gauge family across all label combinations."""
        entry = self._families.get(name)
        if entry is None:
            return 0.0
        if entry["type"] == "histogram":
            return float(sum(value["count"] for _, value in entry["series"]))
        return float(sum(value for _, value in entry["series"]))

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots additively into a new one."""
        merged = json.loads(json.dumps(self._families))
        for name, entry in other._families.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = json.loads(json.dumps(entry))
                continue
            if mine["type"] != entry["type"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: {mine['type']} vs "
                    f"{entry['type']}"
                )
            if mine["labels"] != entry["labels"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: labels {mine['labels']} "
                    f"vs {entry['labels']}"
                )
            if mine["type"] == "histogram" and mine.get("buckets") != entry.get(
                "buckets"
            ):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            series = {tuple(key): value for key, value in mine["series"]}
            for key, value in entry["series"]:
                key = tuple(key)
                current = series.get(key)
                if current is None:
                    series[key] = json.loads(json.dumps(value))
                elif mine["type"] == "histogram":
                    series[key] = {
                        "counts": [
                            a + b
                            for a, b in zip(current["counts"], value["counts"])
                        ],
                        "sum": current["sum"] + value["sum"],
                        "count": current["count"] + value["count"],
                    }
                else:
                    series[key] = current + value
            mine["series"] = [
                [list(key), value] for key, value in sorted(series.items())
            ]
        return MetricsSnapshot(merged)

    @classmethod
    def merge_all(
        cls, snapshots: Iterable["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        merged = cls.empty()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __repr__(self) -> str:
        return f"MetricsSnapshot({len(self._families)} families)"


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (deep instrumentation lands here)."""
    return _DEFAULT_REGISTRY
