"""Unified observability: metrics registry, stage tracing, exposition.

The package is dependency-free (stdlib only) and built around two
invariants the rest of the system already lives by:

* **Mergeable state.**  :class:`~repro.observability.metrics.MetricsSnapshot`
  follows the accumulator discipline — ``state_dict()`` /
  ``from_state_dict()`` round trips and an associative, commutative
  ``merge`` — so multi-process collectors and the fan-in topology
  aggregate metrics exactly like report state (sum counters, sum
  histogram buckets, sum additive gauges).
* **Zero cost when disabled, zero rng impact always.**  Every mutator
  (`Counter.inc`, `Histogram.observe`, `trace.span`) first checks one
  module-level boolean (set from the ``REPRO_METRICS`` environment
  variable, toggleable via :func:`set_enabled`); disabled, no clock is
  read and no state is touched.  Instrumentation never draws from any
  rng, so estimates are bit-for-bit identical with metrics on or off.
"""

from .logsetup import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    metrics_enabled,
    set_enabled,
)
from .exposition import render_prometheus
from .tracing import Tracer, get_tracer, trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_registry",
    "get_tracer",
    "metrics_enabled",
    "render_prometheus",
    "set_enabled",
    "trace",
]
