"""One-stop structured logging configuration for the ``repro`` tree.

Everything under the ``repro`` logger namespace (server, topology,
resilience, CLI) funnels through the single handler installed here:
human-readable lines by default, newline-delimited JSON with
``json_mode=True``.  The handler resolves ``sys.stderr`` at emit time,
so output redirection and pytest's capture both see the records, and
calling :func:`configure_logging` again reconfigures in place instead of
stacking duplicate handlers.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

__all__ = ["configure_logging", "get_logger"]

_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}

_HANDLER_TAG = "repro-observability-handler"


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            document["exception"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


class _StderrHandler(logging.Handler):
    """A StreamHandler that looks up ``sys.stderr`` per record, so streams
    swapped after configuration (redirection, test capture) still receive
    the output."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = self.format(record)
            stream = sys.stderr
            stream.write(message + "\n")
        except RecursionError:
            raise
        except Exception:
            self.handleError(record)


def configure_logging(
    level: str = "info", json_mode: bool = False
) -> logging.Logger:
    """Install (or replace) the single ``repro`` logging handler."""
    try:
        resolved = _LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(_LEVELS)}"
        ) from None
    logger = logging.getLogger("repro")
    logger.setLevel(resolved)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_tag", None) == _HANDLER_TAG:
            logger.removeHandler(handler)
    handler = _StderrHandler()
    handler._repro_tag = _HANDLER_TAG
    if json_mode:
        handler.setFormatter(_JsonFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname).1s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
        formatter.converter = time.localtime
        handler.setFormatter(formatter)
    logger.addHandler(handler)
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro`` itself if None)."""
    if name is None:
        return logging.getLogger("repro")
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
