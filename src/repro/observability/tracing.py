"""Span-based stage tracing over monotonic clocks.

``trace.span("ingest.flush")`` wraps a stage in a context manager that
records its monotonic duration into a bounded in-memory ring of recent
spans and (when a registry is attached) a ``repro_span_seconds``
histogram labelled by span name.  Like the metrics core, tracing is
gated on the one process-wide enabled flag: disabled, ``span`` returns a
shared no-op context manager — no clock read, no allocation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, _STATE, get_registry

__all__ = ["SPAN_RING_CAPACITY", "Span", "Tracer", "get_tracer", "trace"]

#: How many completed spans each tracer retains for inspection.
SPAN_RING_CAPACITY = 256


class _NullSpan:
    """The disabled path: one shared, reusable, do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, **fields: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """One live stage timing; records itself into the tracer on exit."""

    __slots__ = ("name", "started", "duration_seconds", "fields", "_tracer")

    def __init__(self, tracer: "Tracer", name: str):
        self.name = name
        self.started = 0.0
        self.duration_seconds: Optional[float] = None
        self.fields: Dict[str, Any] = {}
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_seconds = time.perf_counter() - self.started
        if exc_type is not None:
            self.fields.setdefault("error", exc_type.__name__)
        self._tracer._record(self)

    def annotate(self, **fields: Any) -> None:
        """Attach small structured facts (counts, sizes) to the span."""
        self.fields.update(fields)


class Tracer:
    """A bounded ring of recent spans plus an optional histogram feed."""

    def __init__(
        self,
        capacity: int = SPAN_RING_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._registry = registry
        self._histogram = None
        self._children: Dict[str, Any] = {}

    def span(self, name: str):
        """Context manager timing one stage; no-op while disabled."""
        if not _STATE.enabled:
            return _NULL_SPAN
        return Span(self, name)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
        # Span names are a small fixed vocabulary, so cache each name's
        # histogram child — the per-span cost is then one dict hit plus
        # one observe, not a labels() resolution per stage.
        child = self._children.get(span.name)
        if child is None:
            histogram = self._histogram
            if histogram is None:
                registry = self._registry or get_registry()
                histogram = registry.histogram(
                    "repro_span_seconds",
                    "Stage durations from trace.span instrumentation.",
                    labels=("span",),
                )
                self._histogram = histogram
            child = histogram.labels(span=span.name)
            self._children[span.name] = child
        child.observe(span.duration_seconds)

    def recent(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The retained spans, oldest first, as plain dicts."""
        with self._lock:
            spans = list(self._ring)
        return [
            {
                "name": span.name,
                "duration_seconds": span.duration_seconds,
                **span.fields,
            }
            for span in spans
            if name is None or span.name == name
        ]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


#: The process-wide tracer: ``from repro.observability import trace``.
trace = Tracer()


def get_tracer() -> Tracer:
    return trace
