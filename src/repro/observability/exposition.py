"""Prometheus text exposition (format version 0.0.4) for snapshots.

Renders a :class:`~repro.observability.metrics.MetricsSnapshot` — which
may be a single registry's or a merged tree-wide rollup — into the plain
text format every Prometheus-compatible scraper understands.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .metrics import MetricsSnapshot

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The snapshot as Prometheus text exposition, families sorted by name."""
    lines = []
    for name in sorted(snapshot.families):
        entry = snapshot.families[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['type']}")
        label_names = entry["labels"]
        for values, value in sorted(
            (list(values), value) for values, value in entry["series"]
        ):
            if entry["type"] == "histogram":
                lines.extend(
                    _histogram_lines(
                        name, label_names, values, entry["buckets"], value
                    )
                )
            else:
                block = _label_block(label_names, values)
                lines.append(f"{name}{block} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(
    name: str,
    label_names: Sequence[str],
    values: Sequence[str],
    buckets: Sequence[float],
    series: Mapping,
):
    cumulative = 0
    for bound, count in zip(buckets, series["counts"]):
        cumulative += count
        block = _label_block(
            list(label_names) + ["le"], list(values) + [repr(float(bound))]
        )
        yield f"{name}_bucket{block} {cumulative}"
    block = _label_block(list(label_names) + ["le"], list(values) + ["+Inf"])
    yield f"{name}_bucket{block} {series['count']}"
    base = _label_block(label_names, values)
    yield f"{name}_sum{base} {_format_value(series['sum'])}"
    yield f"{name}_count{base} {series['count']}"
