"""The ``repro watch`` client: poll collectors' STATS, render live rates.

A watch session opens a plain socket to each collector, sends one
``STATS`` control frame, and decodes the ``STATS`` answer — the payload
carries the collector's :meth:`~repro.server.CollectionServer.stats`
counters and a metrics-snapshot ``state_dict``.  Because the counters are
monotonic, two consecutive samples give exact interval rates
(reports/sec, MB/sec) with no server-side bookkeeping.

The rendering also derives the *expected-error half-width* the theory
section promises for the collected population so far: Table-2 methods go
through :func:`repro.theory.bounds.error_bound` (with ``d`` = the
domain's attribute count and ``k`` = the spec's ``max_width``), the
frequency oracles through
:func:`repro.theory.bounds.frequency_confidence_half_width`; protocols
with no closed-form bound render ``n/a``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import CollectionServiceError
from ..server.framing import (
    ERR,
    STATS,
    ControlMessage,
    FrameDecoder,
    encode_control,
)

__all__ = [
    "RateTracker",
    "breaker_states",
    "expected_error_half_width",
    "render_watch",
    "request_stats",
    "sample_targets",
]

_READ_CHUNK = 1 << 16

#: Methods whose half-width comes from the Table-2 ``error_bound``.
_TABLE2_METHODS = frozenset(
    {"InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT"}
)
#: Oracles whose half-width comes from the frequency-oracle CI.
_ORACLE_METHODS = frozenset({"InpOLH", "InpHTCMS"})


async def request_stats(
    host: str, port: int, *, timeout: float = 5.0
) -> Dict[str, Any]:
    """One STATS probe: returns the answer payload (stats + metrics)."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as error:
        raise CollectionServiceError(
            f"cannot connect to collector {host}:{port} for STATS: "
            f"{error or 'timed out'}"
        ) from error
    try:
        writer.write(encode_control(STATS, {}))
        await writer.drain()
        decoder = FrameDecoder()
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise CollectionServiceError(
                    f"STATS probe of {host}:{port} timed out after "
                    f"{timeout:.1f}s"
                )
            chunk = await asyncio.wait_for(reader.read(_READ_CHUNK), remaining)
            if not chunk:
                raise CollectionServiceError(
                    f"collector {host}:{port} closed the stream before "
                    "answering STATS"
                )
            decoder.absorb(chunk)
            for item in decoder.frames():
                if not isinstance(item, ControlMessage):
                    raise CollectionServiceError(
                        f"collector {host}:{port} answered STATS with a "
                        "report frame"
                    )
                if item.kind == ERR:
                    raise CollectionServiceError(
                        f"collector {host}:{port} rejected the STATS probe: "
                        f"{item.payload.get('error', item.payload)}"
                    )
                if item.kind != STATS:
                    raise CollectionServiceError(
                        f"collector {host}:{port} answered STATS with "
                        f"{item.kind!r}"
                    )
                return item.payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def sample_targets(
    targets: Sequence[Tuple[str, int]], *, timeout: float = 5.0
) -> List[Dict[str, Any]]:
    """Probe every target concurrently; failures become error entries."""

    async def probe(host: str, port: int) -> Dict[str, Any]:
        try:
            payload = await request_stats(host, port, timeout=timeout)
        except CollectionServiceError as error:
            return {"target": f"{host}:{port}", "error": str(error)}
        payload = dict(payload)
        payload["target"] = f"{host}:{port}"
        return payload

    return list(
        await asyncio.gather(*(probe(host, port) for host, port in targets))
    )


def expected_error_half_width(stats: Mapping[str, Any]) -> Optional[float]:
    """The theory-derived half-width for the population collected so far.

    Returns ``None`` when the protocol has no closed-form bound (``HH``,
    ``InpEM``), when no reports have arrived yet, or when the stats dict
    is missing the needed fields — the caller renders ``n/a``.
    """
    # Runtime import: repro.theory is heavier than this client needs at
    # import time and is only touched when a bound is actually rendered.
    from ..theory.bounds import error_bound, frequency_confidence_half_width

    spec = stats.get("spec")
    if not isinstance(spec, Mapping):
        return None
    protocol = spec.get("protocol")
    epsilon = spec.get("epsilon")
    population = stats.get("reports")
    dimension = stats.get("num_attributes")
    if not population or not epsilon or not dimension:
        return None
    try:
        if protocol in _TABLE2_METHODS:
            width = int(spec.get("max_width") or 1)
            return float(
                error_bound(
                    protocol,
                    int(dimension),
                    max(width, 1),
                    float(epsilon),
                    int(population),
                )
            )
        if protocol in _ORACLE_METHODS:
            # The oracle estimates cell frequencies over the full binary
            # domain; cap the exponent so the bound stays finite for
            # very wide domains (it only shrinks with domain size).
            domain_size = 2 ** min(int(dimension), 62)
            return float(
                frequency_confidence_half_width(
                    protocol,
                    float(epsilon),
                    int(population),
                    domain_size,
                )
            )
    except Exception:
        return None
    return None


def breaker_states(metrics_state: Mapping[str, Any]) -> Dict[str, int]:
    """Per-state breaker counts out of a metrics-snapshot ``state_dict``."""
    families = metrics_state.get("families")
    if not isinstance(families, Mapping):
        return {}
    entry = families.get("repro_breaker_state")
    if not isinstance(entry, Mapping):
        return {}
    counts: Dict[str, int] = {}
    for key, value in entry.get("series", []):
        if key:
            counts[str(key[0])] = int(value)
    return counts


class RateTracker:
    """Interval rates from consecutive monotonic samples, per target."""

    def __init__(self) -> None:
        self._last: Dict[str, Tuple[float, float, float]] = {}

    def rates(
        self, target: str, reports: float, num_bytes: float, now: Optional[float] = None
    ) -> Optional[Tuple[float, float]]:
        """``(reports/sec, MB/sec)`` since the previous sample, or ``None``
        on a target's first sample (no interval yet)."""
        now = time.monotonic() if now is None else now
        previous = self._last.get(target)
        self._last[target] = (now, float(reports), float(num_bytes))
        if previous is None:
            return None
        then, last_reports, last_bytes = previous
        elapsed = now - then
        if elapsed <= 0:
            return None
        return (
            (float(reports) - last_reports) / elapsed,
            (float(num_bytes) - last_bytes) / (1e6 * elapsed),
        )


def render_watch(
    payloads: Sequence[Mapping[str, Any]],
    tracker: Optional[RateTracker] = None,
    now: Optional[float] = None,
) -> str:
    """One human-readable watch frame over every probed collector."""
    lines: List[str] = []
    total_reports = 0
    for payload in payloads:
        target = payload.get("target", "?")
        error = payload.get("error")
        if error:
            lines.append(f"collector {target}  UNREACHABLE: {error}")
            continue
        stats = payload.get("stats") or {}
        metrics = payload.get("metrics") or {}
        reports = int(stats.get("reports", 0))
        num_bytes = int(stats.get("bytes", 0))
        total_reports += reports
        lines.append(
            f"collector {target}  "
            f"(id {payload.get('collector_id', '?')})"
        )
        rate_text = ""
        if tracker is not None:
            rates = tracker.rates(target, reports, num_bytes, now)
            if rates is not None:
                rate_text = (
                    f"  [{rates[0]:,.1f} reports/s, {rates[1]:.2f} MB/s]"
                )
        lines.append(
            f"  reports : {reports:,}  frames : "
            f"{int(stats.get('frames', 0)):,}  bytes : {num_bytes:,}"
            f"{rate_text}"
        )
        shard_reports = stats.get("shard_reports") or []
        if shard_reports:
            shards = "  ".join(
                f"{index:02d}={count:,}"
                for index, count in enumerate(shard_reports)
            )
            lines.append(f"  shards  : {shards}")
        connections = stats.get("connections") or {}
        if connections:
            lines.append(
                "  conns   : "
                + "  ".join(
                    f"{key}={connections.get(key, 0)}"
                    for key in ("active", "completed", "rejected", "dropped")
                )
            )
        breakers = breaker_states(metrics)
        if breakers:
            lines.append(
                "  breakers: "
                + "  ".join(
                    f"{state}={count}"
                    for state, count in sorted(breakers.items())
                )
            )
        half_width = expected_error_half_width(stats)
        spec = stats.get("spec") or {}
        if half_width is not None:
            lines.append(
                f"  ±error  : {half_width:.4g}  "
                f"({spec.get('protocol')}, eps={spec.get('epsilon')}, "
                f"n={reports:,})"
            )
        else:
            lines.append(
                f"  ±error  : n/a  ({spec.get('protocol', '?')})"
            )
    reachable = sum(1 for payload in payloads if not payload.get("error"))
    lines.append(
        f"fleet: {reachable}/{len(payloads)} collector(s), "
        f"{total_reports:,} reports"
    )
    return "\n".join(lines)
