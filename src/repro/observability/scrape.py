"""A tiny stdlib-asyncio HTTP scrape endpoint (``repro serve --metrics-port``).

Speaks just enough HTTP/1.0 for ``curl`` and a Prometheus scraper:
``GET /metrics`` renders the text exposition of whatever snapshot the
provider callable returns (the server passes a merged view of its own
registry plus the process-wide one), ``GET /healthz`` answers ``ok``,
anything else is 404.  One connection, one request, close — no
keep-alive, no TLS, no auth; bind it to loopback or a scrape network.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from .exposition import CONTENT_TYPE, render_prometheus
from .metrics import MetricsSnapshot

__all__ = ["MetricsScrapeServer"]

_MAX_REQUEST_BYTES = 8192


class MetricsScrapeServer:
    """Serve Prometheus text exposition over plain HTTP."""

    def __init__(
        self,
        snapshot_provider: Callable[[], MetricsSnapshot],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._provider = snapshot_provider
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            if len(request) > _MAX_REQUEST_BYTES:
                self._respond(writer, 400, "request too large\n")
                return
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split(" ")
            if len(parts) != 3 or parts[0] != "GET":
                self._respond(writer, 405, "only GET is served here\n")
                return
            path = parts[1].split("?", 1)[0]
            if path == "/healthz":
                self._respond(writer, 200, "ok\n")
            elif path == "/metrics":
                body = render_prometheus(self._provider())
                self._respond(writer, 200, body, content_type=CONTENT_TYPE)
            else:
                self._respond(writer, 404, "try /metrics\n")
        finally:
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
