"""Session framing for the network collection service.

The collection protocol interleaves two frame families on one TCP stream,
both sharing the report codec's length-prefixed header layout
(``magic | version u16 | kind-length u16 | kind | payload-length u64 |
payload``):

* **report frames** — magic ``b"RPRB"``, exactly the bytes produced by
  ``reports.to_bytes()`` (:mod:`repro.protocols.wire`).  The server relays
  them whole to an :class:`~repro.service.AggregationSession`, paying the
  npz decode cost once at the shard.
* **control frames** — magic ``b"RPRC"``, a small UTF-8 JSON payload.  The
  kinds are the session protocol's verbs: ``HELLO`` (client → server, the
  spec handshake), ``OK``/``ERR`` (server → client), ``FIN`` (client →
  server, end of stream) and ``ACK`` (server → client, per-connection
  frame/report counts).

:class:`FrameDecoder` is the incremental half: TCP hands the receiver
arbitrary byte chunks, so the decoder buffers input and emits a frame only
once every one of its bytes has arrived — a frame split at *any* byte
boundary reassembles identically.  Anything structurally wrong (bad magic,
unknown version, oversized declared payload, non-JSON control payload)
raises :class:`~repro.core.exceptions.WireFormatError` immediately, before
the stream can make the decoder buffer unbounded input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from ..core.exceptions import WireFormatError
from ..protocols.wire import (
    FRAME_LENGTH as _LENGTH,
    FRAME_PREFIX as _PREFIX,
    MAX_PAYLOAD_BYTES,
    REPORT_MAGIC,
    WIRE_FORMAT_VERSION,
)

__all__ = [
    "SERVER_PROTOCOL_VERSION",
    "MAX_CONTROL_BYTES",
    "REPORT_MAGIC",
    "CONTROL_MAGIC",
    "HELLO",
    "OK",
    "ERR",
    "FIN",
    "ACK",
    "CONTROL_KINDS",
    "ControlMessage",
    "encode_control",
    "FrameDecoder",
]

#: Version stamp carried by every control frame.  Bump on protocol changes.
SERVER_PROTOCOL_VERSION = 1

#: Control payloads are small JSON documents (a spec, a diff, counters); a
#: declared length above this is a corrupted or hostile header.
MAX_CONTROL_BYTES = 1 << 20

CONTROL_MAGIC = b"RPRC"

HELLO = "HELLO"
OK = "OK"
ERR = "ERR"
FIN = "FIN"
ACK = "ACK"
CONTROL_KINDS = frozenset({HELLO, OK, ERR, FIN, ACK})

@dataclass(frozen=True)
class ControlMessage:
    """One decoded control frame: a verb plus its JSON payload."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


def encode_control(kind: str, payload: Dict[str, Any] = None) -> bytes:
    """Serialize one control frame (``HELLO``/``OK``/``ERR``/``FIN``/``ACK``)."""
    if kind not in CONTROL_KINDS:
        raise WireFormatError(
            f"unknown control kind {kind!r}; expected one of "
            f"{sorted(CONTROL_KINDS)}"
        )
    try:
        body = json.dumps(payload or {}, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireFormatError(
            f"control payload for {kind!r} is not JSON-serializable: {error}"
        ) from error
    if len(body) > MAX_CONTROL_BYTES:
        raise WireFormatError(
            f"control payload for {kind!r} serializes to {len(body)} bytes, "
            f"above the {MAX_CONTROL_BYTES}-byte limit"
        )
    name = kind.encode("utf-8")
    return (
        _PREFIX.pack(CONTROL_MAGIC, SERVER_PROTOCOL_VERSION, len(name))
        + name
        + _LENGTH.pack(len(body))
        + body
    )


class FrameDecoder:
    """Reassemble control and report frames from arbitrary byte chunks.

    Feed the decoder whatever ``read()`` returned; it yields each frame the
    moment its last byte arrives.  Report frames come back as their raw
    ``bytes`` (ready for :meth:`AggregationSession.submit`); control frames
    come back parsed into :class:`ControlMessage`.

    ``max_frame_bytes`` bounds the declared payload of report frames (the
    server's backpressure knob — a connection can never force the decoder
    to buffer more than one maximal frame plus one read chunk); control
    frames are always capped at :data:`MAX_CONTROL_BYTES`.

    A structural error poisons the decoder: the stream position is no
    longer trustworthy, so every later :meth:`feed` re-raises.
    """

    def __init__(self, max_frame_bytes: int = MAX_PAYLOAD_BYTES):
        if not 0 < max_frame_bytes <= MAX_PAYLOAD_BYTES:
            raise WireFormatError(
                f"max_frame_bytes must be in (0, {MAX_PAYLOAD_BYTES}], "
                f"got {max_frame_bytes}"
            )
        self._max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._error: WireFormatError = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def at_frame_boundary(self) -> bool:
        """True when no partial frame is pending (a clean stream end)."""
        return not self._buffer

    def feed(
        self, data: Union[bytes, bytearray, memoryview]
    ) -> List[Union[ControlMessage, bytes]]:
        """Absorb one chunk; return every frame completed by it (in order)."""
        if self._error is not None:
            raise self._error
        self._buffer += bytes(data)
        frames: List[Union[ControlMessage, bytes]] = []
        try:
            while True:
                item, consumed = self._next_frame()
                if item is None:
                    break
                del self._buffer[:consumed]
                frames.append(item)
        except WireFormatError as error:
            self._error = error
            raise
        return frames

    def _next_frame(self):
        """Parse one complete frame off the buffer head, or ``(None, 0)``."""
        buffer = self._buffer
        if len(buffer) < _PREFIX.size:
            return None, 0
        magic, version, kind_length = _PREFIX.unpack_from(buffer, 0)
        if magic == REPORT_MAGIC:
            expected_version, payload_cap = WIRE_FORMAT_VERSION, self._max_frame_bytes
        elif magic == CONTROL_MAGIC:
            expected_version, payload_cap = SERVER_PROTOCOL_VERSION, MAX_CONTROL_BYTES
        else:
            raise WireFormatError(
                f"stream does not hold a collection frame (magic {bytes(magic)!r}, "
                f"expected {REPORT_MAGIC!r} or {CONTROL_MAGIC!r})"
            )
        if version != expected_version:
            raise WireFormatError(
                f"{'report' if magic == REPORT_MAGIC else 'control'} frame "
                f"uses version {version}, but this library speaks version "
                f"{expected_version}"
            )
        header_end = _PREFIX.size + kind_length + _LENGTH.size
        if len(buffer) < header_end:
            return None, 0
        (payload_length,) = _LENGTH.unpack_from(buffer, _PREFIX.size + kind_length)
        if payload_length > payload_cap:
            raise WireFormatError(
                f"frame declares a {payload_length}-byte payload, above the "
                f"{payload_cap}-byte limit — corrupted length field?"
            )
        frame_end = header_end + payload_length
        if len(buffer) < frame_end:
            return None, 0
        if magic == REPORT_MAGIC:
            return bytes(buffer[:frame_end]), frame_end
        return self._parse_control(kind_length, header_end, frame_end), frame_end

    def _parse_control(
        self, kind_length: int, header_end: int, frame_end: int
    ) -> ControlMessage:
        kind_start = _PREFIX.size
        try:
            kind = bytes(
                self._buffer[kind_start : kind_start + kind_length]
            ).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(
                f"control frame kind is not valid UTF-8: {error}"
            ) from error
        if kind not in CONTROL_KINDS:
            raise WireFormatError(
                f"unknown control kind {kind!r}; expected one of "
                f"{sorted(CONTROL_KINDS)}"
            )
        body = bytes(self._buffer[header_end:frame_end])
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireFormatError(
                f"control frame {kind!r} payload is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"control frame {kind!r} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return ControlMessage(kind=kind, payload=payload)
