"""Session framing for the network collection service.

The collection protocol interleaves two frame families on one TCP stream,
both sharing the report codec's length-prefixed header layout
(``magic | version u16 | kind-length u16 | kind | payload-length u64 |
payload``):

* **report frames** — magic ``b"RPRB"``, exactly the bytes produced by
  ``reports.to_bytes()`` (:mod:`repro.protocols.wire`).  The server relays
  them whole to an :class:`~repro.service.AggregationSession`, paying the
  npz decode cost once at the shard.
* **control frames** — magic ``b"RPRC"``, a UTF-8 JSON payload.  The
  kinds are the session protocol's verbs: ``HELLO`` (client → server, the
  spec handshake), ``OK``/``ERR`` (server → client), ``FIN`` (client →
  server, end of stream), ``ACK`` (server → client, per-connection
  frame/report counts), plus the topology tier's fan-in pair — ``PULL``
  (aggregator → collector, request stats or session state) and ``STATE``
  (collector → aggregator, the answer; its payload may carry a
  base64-encoded session checkpoint, so the *pulling* side raises its
  decoder's ``STATE`` cap to :data:`MAX_STATE_BYTES` — every other
  decoder keeps the generic :data:`MAX_CONTROL_BYTES` bound, because a
  server never legitimately receives an inbound ``STATE`` frame and must
  not let an unauthenticated peer make it buffer 64 MiB) — and the
  observability probe ``STATS`` (request *and* answer: ``repro watch``
  sends an empty ``STATS``, the server answers with its stats dict plus
  a mergeable metrics snapshot, all within the generic control cap).

:class:`FrameDecoder` is the incremental half: TCP hands the receiver
arbitrary byte chunks, so the decoder buffers input and emits a frame only
once every one of its bytes has arrived — a frame split at *any* byte
boundary reassembles identically.  Anything structurally wrong (bad magic,
unknown version, oversized declared payload, non-JSON control payload)
raises :class:`~repro.core.exceptions.WireFormatError` immediately, before
the stream can make the decoder buffer unbounded input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Union

from ..core.exceptions import WireFormatError
from ..observability import get_registry, trace
from ..protocols.wire import (
    FRAME_LENGTH as _LENGTH,
    FRAME_PREFIX as _PREFIX,
    MAX_PAYLOAD_BYTES,
    REPORT_MAGIC,
    WIRE_FORMAT_VERSION,
)

__all__ = [
    "SERVER_PROTOCOL_VERSION",
    "MAX_CONTROL_BYTES",
    "MAX_STATE_BYTES",
    "REPORT_MAGIC",
    "CONTROL_MAGIC",
    "POISON_FRAME",
    "HELLO",
    "OK",
    "ERR",
    "FIN",
    "ACK",
    "PULL",
    "STATE",
    "STATS",
    "CONTROL_KINDS",
    "ControlMessage",
    "encode_control",
    "FrameDecoder",
    "FrameDecoderReference",
]

#: Version stamp carried by every control frame.  Bump on protocol changes.
SERVER_PROTOCOL_VERSION = 1

#: Control payloads are small JSON documents (a spec, a diff, counters); a
#: declared length above this is a corrupted or hostile header.
MAX_CONTROL_BYTES = 1 << 20

#: ``STATE`` answers alone may carry a whole base64-encoded session
#: checkpoint, so decoders that *expect* them (the fan-in pull client)
#: opt into this larger — but still bounded — declared-payload cap via
#: ``FrameDecoder(max_state_bytes=MAX_STATE_BYTES)``.  Everyone else
#: keeps :data:`MAX_CONTROL_BYTES` for ``STATE`` too.
MAX_STATE_BYTES = 64 << 20

CONTROL_MAGIC = b"RPRC"

#: One deliberately malformed frame: four magic bytes matching neither
#: :data:`REPORT_MAGIC` nor :data:`CONTROL_MAGIC`, padded to a plausible
#: header length.  The load generator's poison connections send exactly
#: this, and the framing tests feed it to the decoders, so both sides of
#: the suite provably exercise the same reject-at-the-header first line
#: of defence.
POISON_FRAME = b"XXXX" + bytes(16)

HELLO = "HELLO"
OK = "OK"
ERR = "ERR"
FIN = "FIN"
ACK = "ACK"
PULL = "PULL"
STATE = "STATE"
STATS = "STATS"
CONTROL_KINDS = frozenset({HELLO, OK, ERR, FIN, ACK, PULL, STATE, STATS})

_STATE_KIND_BYTES = STATE.encode("utf-8")

_DECODE_COUNTERS = None


def _decode_counters():
    """Lazily bound decoder throughput counters on the process registry.

    Created once per process (not per decoder): decoders are per
    connection and short-lived, the counters are the long-lived series.
    """
    global _DECODE_COUNTERS
    if _DECODE_COUNTERS is None:
        registry = get_registry()
        frames = registry.counter(
            "repro_decoder_frames_total",
            "Frames decoded off the wire, by frame family.",
            labels=("type",),
        )
        _DECODE_COUNTERS = (
            registry.counter(
                "repro_decoder_bytes_total",
                "Bytes absorbed by the incremental frame decoders.",
            ),
            frames.labels(type="report"),
            frames.labels(type="control"),
        )
    return _DECODE_COUNTERS


def _encode_payload_cap(kind: str) -> int:
    """Encode-side payload bound: the *producer* of a ``STATE`` answer may
    always build one up to :data:`MAX_STATE_BYTES`; what a decoder will
    accept inbound is that decoder's own (stricter by default) choice."""
    return MAX_STATE_BYTES if kind == STATE else MAX_CONTROL_BYTES

@dataclass(frozen=True)
class ControlMessage:
    """One decoded control frame: a verb plus its JSON payload."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


def encode_control(kind: str, payload: Dict[str, Any] = None) -> bytes:
    """Serialize one control frame (``HELLO``/``OK``/``ERR``/``FIN``/``ACK``/
    ``PULL``/``STATE``/``STATS``)."""
    if kind not in CONTROL_KINDS:
        raise WireFormatError(
            f"unknown control kind {kind!r}; expected one of "
            f"{sorted(CONTROL_KINDS)}"
        )
    try:
        body = json.dumps(payload or {}, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireFormatError(
            f"control payload for {kind!r} is not JSON-serializable: {error}"
        ) from error
    payload_cap = _encode_payload_cap(kind)
    if len(body) > payload_cap:
        raise WireFormatError(
            f"control payload for {kind!r} serializes to {len(body)} bytes, "
            f"above the {payload_cap}-byte limit"
        )
    name = kind.encode("utf-8")
    return (
        _PREFIX.pack(CONTROL_MAGIC, SERVER_PROTOCOL_VERSION, len(name))
        + name
        + _LENGTH.pack(len(body))
        + body
    )


class FrameDecoder:
    """Reassemble control and report frames from arbitrary byte chunks.

    The zero-copy incremental decoder: chunks are appended to one growable
    ``bytearray`` and frames are parsed *in place* behind an advancing head
    offset — no per-``read()`` ``bytes`` coercion and no per-frame prefix
    deletion (the old decoder's ``del buffer[:consumed]`` memmoved the
    whole tail for every frame).  Consumed bytes are reclaimed lazily: the
    buffer is compacted only when the dead prefix reaches half the buffer,
    which keeps reclamation amortised O(1) per byte.

    Two consumption styles:

    * :meth:`feed` — the compatible API: absorb a chunk and return every
      completed frame, report frames as owned ``bytes`` copies.
    * :meth:`absorb` + :meth:`frames` — the server's fast path: absorb a
      chunk, then iterate frames with report frames as ``memoryview``\\ s
      into the receive buffer.  Views handed out stay valid across later
      absorbs (compaction rebuilds rather than resizes the exported
      buffer), but decode-or-copy promptly: a live view pins its whole
      backing buffer in memory.

    Control frames come back parsed into :class:`ControlMessage` either
    way.  ``max_frame_bytes`` bounds the declared payload of report frames
    (the server's backpressure knob — a connection can never force the
    decoder to buffer more than one maximal frame plus one read chunk);
    control frames are capped at :data:`MAX_CONTROL_BYTES`, including
    ``STATE`` by default — only an endpoint that *expects* checkpoint-
    carrying ``STATE`` answers (the fan-in pull client) should raise
    ``max_state_bytes`` to :data:`MAX_STATE_BYTES`, so a hostile client
    cannot make a server buffer a 64 MiB "checkpoint" it never asked for.

    A structural error poisons the decoder: the stream position is no
    longer trustworthy, so every later :meth:`feed`/:meth:`absorb`
    re-raises.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_PAYLOAD_BYTES,
        *,
        max_state_bytes: int = MAX_CONTROL_BYTES,
    ):
        if not 0 < max_frame_bytes <= MAX_PAYLOAD_BYTES:
            raise WireFormatError(
                f"max_frame_bytes must be in (0, {MAX_PAYLOAD_BYTES}], "
                f"got {max_frame_bytes}"
            )
        if not MAX_CONTROL_BYTES <= max_state_bytes <= MAX_STATE_BYTES:
            raise WireFormatError(
                f"max_state_bytes must be in [{MAX_CONTROL_BYTES}, "
                f"{MAX_STATE_BYTES}], got {max_state_bytes}"
            )
        self._max_frame_bytes = int(max_frame_bytes)
        self._max_state_bytes = int(max_state_bytes)
        self._buffer = bytearray()
        self._head = 0
        self._error: WireFormatError = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer) - self._head

    @property
    def at_frame_boundary(self) -> bool:
        """True when no partial frame is pending (a clean stream end)."""
        return self._head == len(self._buffer)

    def absorb(self, data: Union[bytes, bytearray, memoryview]) -> None:
        """Append one received chunk to the buffer (no parsing, no copy).

        Iterate :meth:`frames` afterwards to drain the completed frames.
        """
        if self._error is not None:
            raise self._error
        with trace.span("framing.absorb") as span:
            span.annotate(bytes=len(data))
            self._absorb(data)
        _decode_counters()[0].inc(len(data))

    def _absorb(self, data: Union[bytes, bytearray, memoryview]) -> None:
        buffer = self._buffer
        head = self._head
        if head:
            if head == len(buffer):
                # Everything consumed: restart on a fresh buffer.  Rebuild
                # instead of clearing in place so report views handed out
                # earlier (backed by the old object) stay valid.
                self._buffer = buffer = bytearray()
                self._head = 0
            elif head * 2 >= len(buffer):
                # The dead prefix dominates: compact by rebuilding from the
                # live tail (again never resizing the exported old object).
                self._buffer = buffer = bytearray(memoryview(buffer)[head:])
                self._head = 0
        try:
            buffer += data
        except BufferError:
            # A report view from a previous round is still alive, pinning
            # the bytearray against resize.  Shift to a copy; the old
            # object survives for as long as those views need it.
            buffer = bytearray(buffer)
            buffer += data
            self._buffer = buffer

    def frames(self) -> Iterator[Union[ControlMessage, memoryview]]:
        """Yield every frame completed so far (in order), zero-copy.

        Report frames are ``memoryview``\\ s into the receive buffer —
        decode or copy each one promptly (see the class docstring).
        Control frames are parsed :class:`ControlMessage` objects.  A
        structural error raises mid-iteration and poisons the decoder.
        """
        if self._error is not None:
            raise self._error
        _, report_counter, control_counter = _decode_counters()
        try:
            while True:
                item = self._next_frame()
                if item is None:
                    return
                if isinstance(item, ControlMessage):
                    control_counter.inc()
                else:
                    report_counter.inc()
                yield item
        except WireFormatError as error:
            self._error = error
            raise

    def feed(
        self, data: Union[bytes, bytearray, memoryview]
    ) -> List[Union[ControlMessage, bytes]]:
        """Absorb one chunk; return every frame completed by it (in order).

        The compatibility API: report frames come back as owned ``bytes``
        copies, safe to hold indefinitely.
        """
        self.absorb(data)
        return [
            bytes(item) if isinstance(item, memoryview) else item
            for item in self.frames()
        ]

    def _next_frame(self):
        """Parse one complete frame at the head offset, or ``None``."""
        buffer = self._buffer
        head = self._head
        if len(buffer) - head < _PREFIX.size:
            return None
        magic, version, kind_length = _PREFIX.unpack_from(buffer, head)
        if magic == REPORT_MAGIC:
            expected_version = WIRE_FORMAT_VERSION
        elif magic == CONTROL_MAGIC:
            expected_version = SERVER_PROTOCOL_VERSION
        else:
            raise WireFormatError(
                f"stream does not hold a collection frame (magic {bytes(magic)!r}, "
                f"expected {REPORT_MAGIC!r} or {CONTROL_MAGIC!r})"
            )
        if version != expected_version:
            raise WireFormatError(
                f"{'report' if magic == REPORT_MAGIC else 'control'} frame "
                f"uses version {version}, but this library speaks version "
                f"{expected_version}"
            )
        header_end = head + _PREFIX.size + kind_length + _LENGTH.size
        if len(buffer) < header_end:
            return None
        if magic == REPORT_MAGIC:
            payload_cap = self._max_frame_bytes
        else:
            # The kind bytes sit between the prefix and the length field, so
            # they are buffered whenever the length is — the cap can be
            # decided per kind (STATE frames may be allowed to carry
            # checkpoints, the rest are small JSON) without waiting for
            # more input.
            kind_start = head + _PREFIX.size
            payload_cap = (
                self._max_state_bytes
                if bytes(buffer[kind_start : kind_start + kind_length])
                == _STATE_KIND_BYTES
                else MAX_CONTROL_BYTES
            )
        (payload_length,) = _LENGTH.unpack_from(
            buffer, head + _PREFIX.size + kind_length
        )
        if payload_length > payload_cap:
            raise WireFormatError(
                f"frame declares a {payload_length}-byte payload, above the "
                f"{payload_cap}-byte limit — corrupted length field?"
            )
        frame_end = header_end + payload_length
        if len(buffer) < frame_end:
            return None
        self._head = frame_end
        if magic == REPORT_MAGIC:
            return memoryview(buffer)[head:frame_end]
        return self._parse_control(head, kind_length, header_end, frame_end)

    def _parse_control(
        self, head: int, kind_length: int, header_end: int, frame_end: int
    ) -> ControlMessage:
        kind_start = head + _PREFIX.size
        try:
            kind = bytes(
                self._buffer[kind_start : kind_start + kind_length]
            ).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(
                f"control frame kind is not valid UTF-8: {error}"
            ) from error
        if kind not in CONTROL_KINDS:
            raise WireFormatError(
                f"unknown control kind {kind!r}; expected one of "
                f"{sorted(CONTROL_KINDS)}"
            )
        body = bytes(self._buffer[header_end:frame_end])
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireFormatError(
                f"control frame {kind!r} payload is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"control frame {kind!r} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return ControlMessage(kind=kind, payload=payload)


class FrameDecoderReference:
    """The pre-zero-copy decoder, byte for byte as it originally shipped.

    Retained as the ground truth :class:`FrameDecoder` is proven
    equivalent to by the property suite (every-byte splits, interleaved
    control/report frames, rejection behaviour): it re-coerces every
    chunk to ``bytes``, deletes each consumed frame's prefix eagerly, and
    copies every report frame out of the buffer.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_PAYLOAD_BYTES,
        *,
        max_state_bytes: int = MAX_CONTROL_BYTES,
    ):
        if not 0 < max_frame_bytes <= MAX_PAYLOAD_BYTES:
            raise WireFormatError(
                f"max_frame_bytes must be in (0, {MAX_PAYLOAD_BYTES}], "
                f"got {max_frame_bytes}"
            )
        if not MAX_CONTROL_BYTES <= max_state_bytes <= MAX_STATE_BYTES:
            raise WireFormatError(
                f"max_state_bytes must be in [{MAX_CONTROL_BYTES}, "
                f"{MAX_STATE_BYTES}], got {max_state_bytes}"
            )
        self._max_frame_bytes = int(max_frame_bytes)
        self._max_state_bytes = int(max_state_bytes)
        self._buffer = bytearray()
        self._error: WireFormatError = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def at_frame_boundary(self) -> bool:
        """True when no partial frame is pending (a clean stream end)."""
        return not self._buffer

    def feed(
        self, data: Union[bytes, bytearray, memoryview]
    ) -> List[Union[ControlMessage, bytes]]:
        """Absorb one chunk; return every frame completed by it (in order)."""
        if self._error is not None:
            raise self._error
        self._buffer += bytes(data)
        frames: List[Union[ControlMessage, bytes]] = []
        try:
            while True:
                item, consumed = self._next_frame()
                if item is None:
                    break
                del self._buffer[:consumed]
                frames.append(item)
        except WireFormatError as error:
            self._error = error
            raise
        return frames

    def _next_frame(self):
        """Parse one complete frame off the buffer head, or ``(None, 0)``."""
        buffer = self._buffer
        if len(buffer) < _PREFIX.size:
            return None, 0
        magic, version, kind_length = _PREFIX.unpack_from(buffer, 0)
        if magic == REPORT_MAGIC:
            expected_version = WIRE_FORMAT_VERSION
        elif magic == CONTROL_MAGIC:
            expected_version = SERVER_PROTOCOL_VERSION
        else:
            raise WireFormatError(
                f"stream does not hold a collection frame (magic {bytes(magic)!r}, "
                f"expected {REPORT_MAGIC!r} or {CONTROL_MAGIC!r})"
            )
        if version != expected_version:
            raise WireFormatError(
                f"{'report' if magic == REPORT_MAGIC else 'control'} frame "
                f"uses version {version}, but this library speaks version "
                f"{expected_version}"
            )
        header_end = _PREFIX.size + kind_length + _LENGTH.size
        if len(buffer) < header_end:
            return None, 0
        if magic == REPORT_MAGIC:
            payload_cap = self._max_frame_bytes
        else:
            kind_start = _PREFIX.size
            payload_cap = (
                self._max_state_bytes
                if bytes(buffer[kind_start : kind_start + kind_length])
                == _STATE_KIND_BYTES
                else MAX_CONTROL_BYTES
            )
        (payload_length,) = _LENGTH.unpack_from(buffer, _PREFIX.size + kind_length)
        if payload_length > payload_cap:
            raise WireFormatError(
                f"frame declares a {payload_length}-byte payload, above the "
                f"{payload_cap}-byte limit — corrupted length field?"
            )
        frame_end = header_end + payload_length
        if len(buffer) < frame_end:
            return None, 0
        if magic == REPORT_MAGIC:
            return bytes(buffer[:frame_end]), frame_end
        return self._parse_control(kind_length, header_end, frame_end), frame_end

    def _parse_control(
        self, kind_length: int, header_end: int, frame_end: int
    ) -> ControlMessage:
        kind_start = _PREFIX.size
        try:
            kind = bytes(
                self._buffer[kind_start : kind_start + kind_length]
            ).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(
                f"control frame kind is not valid UTF-8: {error}"
            ) from error
        if kind not in CONTROL_KINDS:
            raise WireFormatError(
                f"unknown control kind {kind!r}; expected one of "
                f"{sorted(CONTROL_KINDS)}"
            )
        body = bytes(self._buffer[header_end:frame_end])
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireFormatError(
                f"control frame {kind!r} payload is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"control frame {kind!r} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return ControlMessage(kind=kind, payload=payload)
