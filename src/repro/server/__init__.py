"""The network collection service: framing → handshake → server → loadgen.

This package turns the wire codec and :class:`~repro.service.
AggregationSession` into an actual deployment surface (stdlib ``asyncio``
only, no new runtime dependencies):

* :mod:`~repro.server.framing` — the session frame layer: report frames
  (the existing ``RPRB`` wire bytes) and JSON control frames
  (``HELLO``/``OK``/``ERR``/``FIN``/``ACK``) share one length-prefixed
  header, reassembled incrementally by :class:`FrameDecoder` no matter how
  TCP fragments them;
* :mod:`~repro.server.handshake` — the ``HELLO`` spec agreement: clients
  present their full canonical spec (plus its hash) and mismatches are
  rejected with a readable per-field diff;
* :class:`CollectionServer` — the asyncio collector: per-connection
  rejection of bad input, round-robin sharding over
  ``AggregationSession``\\ s, bounded per-connection buffering, periodic +
  shutdown checkpoints, and finalization bit-for-bit identical to
  ``run_streaming`` over the same encoded reports;
* :class:`LoadGenerator` — the client-fleet simulator: N concurrent
  clients, connection churn, malformed-frame injection, throughput
  reporting.

The CLI drives both ends via ``repro serve`` and ``repro load``.
"""

from .framing import (
    ACK,
    CONTROL_KINDS,
    CONTROL_MAGIC,
    ERR,
    FIN,
    HELLO,
    MAX_CONTROL_BYTES,
    MAX_STATE_BYTES,
    OK,
    POISON_FRAME,
    PULL,
    REPORT_MAGIC,
    SERVER_PROTOCOL_VERSION,
    STATE,
    ControlMessage,
    FrameDecoder,
    FrameDecoderReference,
    encode_control,
)
from .handshake import check_hello, hello_payload, spec_hash
from .loadgen import ClientResult, LoadGenerator, LoadReport
from .multiproc import MultiProcessCollector
from .server import (
    DEFAULT_BATCH_MAX_USERS,
    DEFAULT_BATCH_WINDOW_SECONDS,
    DEFAULT_MAX_FRAME_BYTES,
    DURABLE_STATE_FILENAME,
    CollectionServer,
    install_uvloop,
    merge_checkpoints,
)

__all__ = [
    # framing
    "SERVER_PROTOCOL_VERSION",
    "MAX_CONTROL_BYTES",
    "REPORT_MAGIC",
    "CONTROL_MAGIC",
    "POISON_FRAME",
    "HELLO",
    "OK",
    "ERR",
    "FIN",
    "ACK",
    "PULL",
    "STATE",
    "MAX_STATE_BYTES",
    "CONTROL_KINDS",
    "ControlMessage",
    "encode_control",
    "FrameDecoder",
    "FrameDecoderReference",
    # handshake
    "spec_hash",
    "hello_payload",
    "check_hello",
    # server
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_BATCH_MAX_USERS",
    "DEFAULT_BATCH_WINDOW_SECONDS",
    "DURABLE_STATE_FILENAME",
    "CollectionServer",
    "install_uvloop",
    "merge_checkpoints",
    "MultiProcessCollector",
    # loadgen
    "ClientResult",
    "LoadGenerator",
    "LoadReport",
]
