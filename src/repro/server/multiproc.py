"""The multi-process socket tier: one collector per core, one port.

:class:`MultiProcessCollector` scales :class:`CollectionServer` past a
single event loop by running ``processes`` worker processes that all bind
the same address with ``SO_REUSEPORT`` — the kernel load-balances incoming
connections across them, so clients need no changes and no userspace proxy
sits on the hot path.  Each worker owns its own shard sessions and writes
its own checkpoints (``checkpoint_dir/worker-WW/shard-NN.npz``);
:meth:`MultiProcessCollector.join` merges every worker's checkpoints
through :func:`merge_checkpoints`, i.e. through the same exact
``AggregationSession.merge`` algebra that makes single-process sharding
estimate-invariant.  Splitting connections across processes is therefore
just another grouping of the same report batches, and the merged estimates
are bit-for-bit what one process would have produced.

A global ``stop_after_reports`` target is enforced through one shared
counter: every worker server reports signed user-report deltas into it
(``CollectionServer``'s ``report_observer`` hook) and a tiny per-worker
watcher polls the total, requesting a fleet-wide stop the moment the
target is reached.
"""

from __future__ import annotations

import asyncio
import glob
import multiprocessing
import socket
from pathlib import Path
from typing import List, Optional, Union

from ..core.domain import Domain
from ..core.exceptions import CollectionServiceError, ProtocolConfigurationError
from ..observability import MetricsSnapshot
from ..resilience.defaults import COUNTER_POLL_SECONDS
from ..service.session import AggregationSession
from ..service.spec import ProtocolSpec
from .server import (
    DEFAULT_BATCH_MAX_USERS,
    DEFAULT_BATCH_WINDOW_SECONDS,
    DEFAULT_MAX_FRAME_BYTES,
    CollectionServer,
    install_uvloop,
    merge_checkpoints,
)

__all__ = ["MultiProcessCollector"]

PathLike = Union[str, Path]


def _worker_main(
    worker_index: int,
    spec_dict: dict,
    attributes: list,
    config: dict,
    counter,
    stop_event,
    ready_event,
) -> None:
    """One collector process: bind (SO_REUSEPORT), serve, checkpoint, exit.

    Top-level (not a closure) so every multiprocessing start method can
    pickle it.  All coordination state — the shared report counter, the
    fleet-wide stop event, this worker's ready event — comes in as
    arguments.
    """
    spec = ProtocolSpec.from_dict(spec_dict)
    domain = Domain(attributes)
    target = config["stop_after_reports"]
    if config.get("use_uvloop"):
        install_uvloop()  # warns and stays on stock asyncio when absent

    def observe(delta: int) -> None:
        with counter.get_lock():
            counter.value += delta

    worker_dir = Path(config["checkpoint_dir"]) / f"worker-{worker_index:02d}"

    async def main() -> None:
        server = CollectionServer(
            spec,
            domain,
            host=config["host"],
            port=config["port"],
            shards=config["shards"],
            max_frame_bytes=config["max_frame_bytes"],
            batch_max_users=config["batch_max_users"],
            batch_window_seconds=config["batch_window_seconds"],
            reuse_port=True,
            checkpoint_dir=worker_dir,
            report_observer=observe,
        )
        await server.start()
        ready_event.set()

        async def watch() -> None:
            # The shared counter is the only global view of progress, so
            # the target check must live here, not in CollectionServer's
            # per-process stop_after_reports.
            while not stop_event.is_set():
                if target is not None:
                    with counter.get_lock():
                        collected = counter.value
                    if collected >= target:
                        stop_event.set()
                        break
                await asyncio.sleep(COUNTER_POLL_SECONDS)
            server.request_stop()

        watcher = asyncio.create_task(watch())
        try:
            await server.serve_until_stopped()
        finally:
            watcher.cancel()
            try:
                await watcher
            except asyncio.CancelledError:
                pass
        # Per-worker metrics ride the same channel as per-worker
        # checkpoints: a snapshot file next to the shard files, merged by
        # the parent in join() through the snapshot merge algebra.
        metrics_path = worker_dir / "metrics.json"
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(server.metrics_snapshot().to_json())

    asyncio.run(main())


class MultiProcessCollector:
    """Run ``processes`` :class:`CollectionServer` workers on one port.

    Parameters mirror :class:`CollectionServer` where they share meaning;
    ``checkpoint_dir`` is mandatory because worker checkpoints are the
    merge channel back to the parent.  ``stop_after_reports`` is a *fleet*
    total, enforced through a shared counter.

    Lifecycle: :meth:`start` spawns the workers and blocks until every one
    is accepting connections (the bound port is then :attr:`port`);
    :meth:`join` waits for them to exit and returns the merged
    :class:`AggregationSession`; :meth:`stop` requests a fleet-wide stop.
    """

    def __init__(
        self,
        spec,
        domain: Domain,
        *,
        processes: int,
        checkpoint_dir: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        batch_max_users: int = DEFAULT_BATCH_MAX_USERS,
        batch_window_seconds: float = DEFAULT_BATCH_WINDOW_SECONDS,
        stop_after_reports: Optional[int] = None,
        use_uvloop: bool = False,
        start_timeout: float = 30.0,
    ):
        if processes < 1:
            raise ProtocolConfigurationError(
                f"process count must be >= 1, got {processes}"
            )
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ProtocolConfigurationError(
                "the multi-process tier needs SO_REUSEPORT, which this "
                "platform does not support"
            )
        if stop_after_reports is not None and stop_after_reports < 1:
            raise ProtocolConfigurationError(
                f"stop_after_reports must be >= 1, got {stop_after_reports}"
            )
        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_protocol(spec)
        if not isinstance(domain, Domain):
            raise ProtocolConfigurationError(
                f"a MultiProcessCollector needs a Domain, "
                f"got {type(domain).__name__}"
            )
        self._spec = spec
        self._domain = domain
        self._processes = int(processes)
        self._checkpoint_dir = Path(checkpoint_dir)
        self._host = host
        self._requested_port = int(port)
        self._config = {
            "host": host,
            "port": int(port),  # rewritten in start() when 0
            "shards": int(shards),
            "max_frame_bytes": int(max_frame_bytes),
            "batch_max_users": int(batch_max_users),
            "batch_window_seconds": float(batch_window_seconds),
            "checkpoint_dir": str(self._checkpoint_dir),
            "stop_after_reports": stop_after_reports,
            "use_uvloop": bool(use_uvloop),
        }
        self._start_timeout = float(start_timeout)
        self._context = multiprocessing.get_context()
        self._counter = self._context.Value("q", 0)
        self._stop_event = self._context.Event()
        self._workers: List = []
        self._placeholder: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._metrics: Optional[MetricsSnapshot] = None

    @property
    def metrics_snapshot(self) -> Optional[MetricsSnapshot]:
        """The fleet-wide merged metrics (populated by :meth:`join`)."""
        return self._metrics

    @property
    def port(self) -> Optional[int]:
        """The shared bound port (``None`` before :meth:`start`)."""
        return self._port

    @property
    def num_reports(self) -> int:
        """Fleet-wide user reports collected so far (the shared counter)."""
        with self._counter.get_lock():
            return int(self._counter.value)

    def start(self) -> "MultiProcessCollector":
        """Spawn the workers; returns once every one accepts connections."""
        if self._workers:
            raise ProtocolConfigurationError("the collector is already started")
        port = self._requested_port
        if port == 0:
            # Reserve a port by holding a bound (not listening) socket in
            # the SO_REUSEPORT group; workers join the group, and only
            # their listening sockets receive connections.  The reservation
            # is released once every worker is bound, leaving no race with
            # unrelated processes.
            self._placeholder = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((self._host, 0))
            port = self._placeholder.getsockname()[1]
        self._port = port
        self._config["port"] = port
        ready_events = []
        spec_dict = self._spec.to_dict()
        attributes = list(self._domain.attributes)
        for worker_index in range(self._processes):
            ready = self._context.Event()
            worker = self._context.Process(
                target=_worker_main,
                args=(
                    worker_index,
                    spec_dict,
                    attributes,
                    dict(self._config),
                    self._counter,
                    self._stop_event,
                    ready,
                ),
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
            ready_events.append(ready)
        for worker, ready in zip(self._workers, ready_events):
            if not ready.wait(self._start_timeout):
                self.stop()
                raise CollectionServiceError(
                    f"collector worker {worker.pid} did not come up within "
                    f"{self._start_timeout:.1f}s"
                )
        self._release_placeholder()
        return self

    def stop(self) -> None:
        """Request a fleet-wide stop (workers drain, checkpoint and exit)."""
        self._stop_event.set()

    def join(self, timeout: Optional[float] = None) -> AggregationSession:
        """Wait for every worker, then merge their checkpoints.

        Returns the merged :class:`AggregationSession` — by the merge
        algebra, exactly the session one process would have accumulated
        over the same reports.
        """
        if not self._workers:
            raise ProtocolConfigurationError("the collector was never started")
        for worker in self._workers:
            worker.join(timeout)
            if worker.is_alive():
                raise CollectionServiceError(
                    f"collector worker {worker.pid} is still running after "
                    f"the join timeout"
                )
        self._release_placeholder()
        failed = [
            worker for worker in self._workers if worker.exitcode != 0
        ]
        if failed:
            raise CollectionServiceError(
                f"{len(failed)} collector worker(s) exited with "
                f"{sorted(worker.exitcode for worker in failed)}"
            )
        paths = sorted(
            glob.glob(str(self._checkpoint_dir / "worker-*" / "shard-*.npz"))
        )
        if not paths:
            raise CollectionServiceError(
                f"no worker checkpoints found under {self._checkpoint_dir}"
            )
        self._metrics = self._merge_worker_metrics()
        return merge_checkpoints(paths)

    def _merge_worker_metrics(self) -> MetricsSnapshot:
        """Fold every worker's metrics.json into one snapshot.

        Purely additive (the snapshot merge algebra), so worker count and
        merge order do not matter — the same invariance argument as the
        checkpoint merge.  A worker that never wrote metrics (killed hard,
        metrics disabled mid-flight) just contributes nothing.
        """
        merged = MetricsSnapshot.empty()
        for path in sorted(self._checkpoint_dir.glob("worker-*/metrics.json")):
            try:
                merged = merged.merge(MetricsSnapshot.from_json(path.read_text()))
            except (OSError, ValueError):
                continue
        return merged

    def _release_placeholder(self) -> None:
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
