"""The HELLO handshake: how a client proves it speaks the server's spec.

The first frame on every connection is a ``HELLO`` control frame carrying
the client's full :class:`~repro.service.ProtocolSpec` (as ``to_dict``),
the SHA-256 of its canonical JSON form, and the attribute names of the
domain the client reports over.  The server diffs the client spec against
its own in canonical form — defaults spelled out, pure performance knobs
(:meth:`~repro.protocols.base.MarginalReleaseProtocol.tuning_options`)
ignored — so a rejection carries the exact per-field disagreement instead
of an opaque hash mismatch, and two collectors tuned for different
hardware still interoperate.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence

from ..core.exceptions import ReproError
from ..service.spec import ProtocolSpec

__all__ = ["spec_hash", "hello_payload", "check_hello"]


def spec_hash(spec: ProtocolSpec) -> str:
    """SHA-256 of the spec's sorted-key JSON form.

    Hash the *canonical* spec (``spec.canonical()``) when the hash must be
    comparable across clients that spell defaults differently.
    """
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()


def hello_payload(
    spec: ProtocolSpec,
    attributes: Sequence[str],
    *,
    token: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``HELLO`` payload a client sends to open a collection stream.

    ``token`` is an optional opaque group identifier: a ``durable_acks``
    collector records it at ACK time and answers a replay of the same
    token idempotently (retry-after-failure never double-counts a group).
    """
    payload = {
        "spec": spec.to_dict(),
        "spec_hash": spec_hash(spec.canonical()),
        "attributes": list(attributes),
    }
    if token is not None:
        payload["token"] = str(token)
    return payload


def check_hello(
    payload: Dict[str, Any],
    server_spec: ProtocolSpec,
    tuning_options: frozenset,
    attributes: Sequence[str],
) -> List[str]:
    """Validate a ``HELLO`` payload against the server's contract.

    Returns the rejection reasons — the readable spec diff plus any
    domain/shape problems — or an empty list when the client is accepted.
    ``server_spec`` must already be canonical.  A ``spec_hash`` in the
    payload is checked against the canonical form of the spec *in the same
    payload* (an integrity check on the handshake itself); spec agreement
    with the server is always decided by the canonical diff, so tuning-only
    differences never reject.
    """
    problems: List[str] = []
    spec_dict = payload.get("spec")
    try:
        client_spec = ProtocolSpec.from_dict(spec_dict)
        client_canonical = client_spec.canonical()
    except ReproError as error:
        # Anything a hostile spec can raise — malformed shapes, unknown
        # protocols/options, invalid epsilon (PrivacyBudgetError) — is a
        # rejection reason, never a handler crash.
        return [f"spec: {error}"]
    claimed_hash = payload.get("spec_hash")
    if claimed_hash is not None and claimed_hash != spec_hash(client_canonical):
        problems.append(
            "spec_hash: does not match the canonical form of the spec sent "
            "in this HELLO (corrupted or stale handshake)"
        )
    problems.extend(
        server_spec.diff(client_canonical, ignore_options=tuning_options)
    )
    client_attributes = payload.get("attributes")
    if not isinstance(client_attributes, list) or not all(
        isinstance(name, str) for name in client_attributes
    ):
        problems.append("attributes: must be a list of attribute names")
    elif list(client_attributes) != list(attributes):
        problems.append(
            f"attributes: {list(attributes)!r} != {list(client_attributes)!r}"
        )
    token = payload.get("token")
    if token is not None and not isinstance(token, str):
        problems.append(
            f"token: must be a string when present, got {type(token).__name__}"
        )
    return problems
