"""A client-fleet simulator for hammering a :class:`CollectionServer`.

:class:`LoadGenerator` spins up ``num_clients`` concurrent asyncio clients
against one server.  Each client owns a slice of the report frames — either
pre-encoded frames handed in by the caller (the reproducible path used by
the equality tests and ``repro load --dataset``) or records it synthesizes
and encodes itself via ``encode_batch`` — and plays the session protocol:
``HELLO`` handshake, a stream of report frames, ``FIN``, then verifies the
server's ``ACK`` counts.  Knobs cover connection churn (``frames_per_
connection`` forces periodic reconnects, each with a fresh handshake) and
fault injection (``malformed_connections`` opens extra poison connections
that send garbage and expect a per-connection ``ERR`` rejection — proving
the server survives hostile input while the well-formed fleet proceeds).

The fleet can also drive a whole multi-collector tree: pass ``targets``
(several collector addresses) instead of ``host``/``port`` and each group
of frames is routed by a :mod:`repro.topology.router` policy.  With a
``token_prefix`` every group carries a unique idempotency token in its
``HELLO``, and with a ``failover`` oracle (the topology supervisor's
verdict on a broken address) a client survives a collector death
mid-stream: groups the dead collector durably acknowledged are counted
from the recovered token set, everything else is replayed to a surviving
collector — never both, so nothing is lost and nothing double-counts.

:meth:`LoadGenerator.run` returns a :class:`LoadReport` with the achieved
throughput (reports/sec, MB/sec) and per-client accounting.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import (
    CircuitOpenError,
    CollectionServiceError,
    ProtocolConfigurationError,
    WireFormatError,
)
from ..core.rng import RngLike, ensure_rng, spawn_rngs
from ..observability import get_registry, metrics_enabled, trace
from ..resilience.defaults import CONNECT_POLL_SECONDS, default_timeout_policy
from ..resilience.policies import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilienceConfig,
    RetryPolicy,
    TimeoutPolicy,
)
from ..resilience.spool import ReportSpool
from ..service.spec import ProtocolSpec
from .framing import (
    ACK,
    ERR,
    FIN,
    HELLO,
    OK,
    POISON_FRAME,
    ControlMessage,
    FrameDecoder,
    encode_control,
)
from .handshake import hello_payload

__all__ = ["ClientResult", "LoadReport", "LoadGenerator"]

_LG_COUNTERS = None


def _loadgen_counters():
    """Lazy fleet-side counters on the process registry (created once)."""
    global _LG_COUNTERS
    if _LG_COUNTERS is None:
        registry = get_registry()
        _LG_COUNTERS = (
            registry.counter(
                "repro_loadgen_acked_frames_total",
                "Report frames acknowledged to the client fleet.",
            ),
            registry.counter(
                "repro_loadgen_acked_reports_total",
                "User reports acknowledged to the client fleet.",
            ),
            registry.counter(
                "repro_loadgen_bytes_sent_total",
                "Report payload bytes put on the wire by the fleet.",
            ),
            registry.counter(
                "repro_loadgen_retries_total",
                "Group delivery retries across the fleet.",
            ),
            registry.counter(
                "repro_loadgen_groups_total",
                "Connection groups settled, by how they were satisfied.",
                labels=("outcome",),
            ),
        )
    return _LG_COUNTERS


@dataclass
class ClientResult:
    """One simulated client's accounting."""

    client_id: int
    connections: int = 0
    frames: int = 0
    bytes: int = 0
    acked_frames: int = 0
    acked_reports: int = 0
    rejected_connections: int = 0
    retries: int = 0
    recovered_groups: int = 0
    #: Groups satisfied from the durable spool after a restart (either a
    #: committed group's recorded counts, or a pending group's recorded
    #: bytes replayed under its original token).
    spool_replays: int = 0
    #: Acknowledged counts per target, keyed ``"host:port"`` — the client
    #: side of exact loss accounting: these totals stay available even
    #: when a collector's own durable state is gone.
    acked_by_target: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def credit_target(self, address: str, frames: int, reports: int) -> None:
        entry = self.acked_by_target.setdefault(
            address, {"frames": 0, "reports": 0, "groups": 0}
        )
        entry["frames"] += int(frames)
        entry["reports"] += int(reports)
        entry["groups"] += 1

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class LoadReport:
    """Fleet-level result of one :meth:`LoadGenerator.run`."""

    duration_seconds: float
    clients: int
    connections: int
    frames: int
    bytes: int
    acked_frames: int
    acked_reports: int
    rejected_connections: int
    retries: int = 0
    recovered_groups: int = 0
    spool_replays: int = 0
    acked_by_target: Dict[str, Dict[str, int]] = field(default_factory=dict)
    per_client: List[ClientResult] = field(default_factory=list)

    @property
    def reports_per_second(self) -> float:
        return (
            self.acked_reports / self.duration_seconds
            if self.duration_seconds > 0
            else 0.0
        )

    @property
    def megabytes_per_second(self) -> float:
        return (
            self.bytes / (1e6 * self.duration_seconds)
            if self.duration_seconds > 0
            else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_seconds": self.duration_seconds,
            "clients": self.clients,
            "connections": self.connections,
            "frames": self.frames,
            "bytes": self.bytes,
            "acked_frames": self.acked_frames,
            "acked_reports": self.acked_reports,
            "rejected_connections": self.rejected_connections,
            "retries": self.retries,
            "recovered_groups": self.recovered_groups,
            "spool_replays": self.spool_replays,
            "acked_by_target": {
                address: dict(counts)
                for address, counts in self.acked_by_target.items()
            },
            "reports_per_second": self.reports_per_second,
            "megabytes_per_second": self.megabytes_per_second,
            "per_client": [client.to_dict() for client in self.per_client],
        }


class _ControlChannel:
    """Read side of one client connection: frames in, control messages out."""

    def __init__(self, reader, read_chunk_bytes: int, timeout: float):
        self._reader = reader
        self._decoder = FrameDecoder()
        self._pending = deque()
        self._read_chunk_bytes = read_chunk_bytes
        self._timeout = timeout

    async def next_message(self) -> ControlMessage:
        while not self._pending:
            try:
                chunk = await asyncio.wait_for(
                    self._reader.read(self._read_chunk_bytes), self._timeout
                )
            except asyncio.TimeoutError:
                raise CollectionServiceError(
                    f"server sent no response within {self._timeout:.1f}s"
                ) from None
            if not chunk:
                raise CollectionServiceError(
                    "server closed the connection mid-session"
                )
            try:
                self._pending.extend(self._decoder.feed(chunk))
            except WireFormatError as error:
                raise CollectionServiceError(
                    f"server answered out of protocol: {error}"
                ) from error
        item = self._pending.popleft()
        if not isinstance(item, ControlMessage):
            raise CollectionServiceError(
                "server sent a report frame; expected a control message"
            )
        return item


class LoadGenerator:
    """Drive ``num_clients`` concurrent simulated clients at one server.

    Parameters
    ----------
    spec, domain:
        The collection contract, exactly as on the server (a spec mismatch
        here is the rejection path, not a usage error).
    host, port:
        The server's address.
    frames:
        Optional pre-encoded wire frames, distributed round-robin over the
        clients.  When omitted each client synthesizes
        ``records_per_client`` uniform records and encodes them itself in
        ``batch_size`` batches (one frame per batch) with a per-client
        child generator of ``seed``.
    frames_per_connection:
        Connection churn: reconnect (with a fresh ``HELLO``) after this
        many frames.  ``None`` sends everything over one connection.
    malformed_connections:
        Extra poison connections (spread over the fleet) that handshake
        correctly, then send garbage and expect a per-connection ``ERR``.
    drain_every:
        Await the writer's flow-control drain once per this many frames
        rather than after every frame (the transport's high-water mark
        still applies backpressure in between).  Per-frame draining costs
        a scheduler round-trip per frame and was the client-side ingest
        bottleneck.
    targets, routing:
        Instead of one ``host``/``port``, a list of collector addresses
        and the routing policy (``round-robin`` or ``hash``) that deals
        connection groups across them.
    token_prefix:
        When set, every group's ``HELLO`` carries the idempotency token
        ``{token_prefix}/c{client}/g{group}`` — required for exact
        retry/failover against ``durable_acks`` collectors.
    failover:
        A callable ``address -> {"dead": bool, "acked_tokens": {...}}``
        (sync or async) consulted after a failed group delivery; typically
        :meth:`repro.topology.TopologySupervisor.failover` or its wire
        twin.  ``dead: True`` means the address's durable checkpoint has
        been recovered, so the token set is complete: recovered groups are
        counted, the rest replay to surviving collectors.
    max_retries, retry_backoff:
        Legacy transient-failure knobs: mapped onto a linear, no-jitter
        :class:`~repro.resilience.RetryPolicy` (the original schedule,
        exactly).  Ignored when ``retry`` or ``resilience`` is given.
    retry, timeouts, breaker, resilience:
        The policy objects from :mod:`repro.resilience`: a
        :class:`RetryPolicy` for per-group delivery, a
        :class:`TimeoutPolicy` (overrides ``connect_timeout``/
        ``io_timeout``), a :class:`CircuitBreakerPolicy` stamped out
        per target (``None`` disables breakers), or a whole
        :class:`ResilienceConfig` bundling all three.  Explicit policy
        arguments win over the bundle's fields.
    spool_dir:
        Durable store-and-forward: every group's frames are fsync'd to
        ``spool_dir/client-NNNN.spool`` *before* first transmission and
        committed there once acknowledged.  A crashed-and-restarted
        client (same constructor arguments) replays pending groups
        byte-exactly under their original idempotency tokens and counts
        committed ones without touching the network — no loss, no
        double-folding.  Requires ``token_prefix``.
    on_group_done:
        Test hook called (sync or async) after every delivered group with
        ``(client_id, group_index)`` — the fault-injection harness uses it
        to kill collectors at deterministic points mid-stream.
    """

    def __init__(
        self,
        spec,
        domain: Domain,
        host: Optional[str] = None,
        port: Optional[int] = None,
        *,
        targets: Optional[Sequence[Tuple[str, int]]] = None,
        routing: str = "round-robin",
        token_prefix: Optional[str] = None,
        failover: Optional[Callable[..., Any]] = None,
        max_retries: int = 3,
        retry_backoff: float = 0.2,
        retry: Optional[RetryPolicy] = None,
        timeouts: Optional[TimeoutPolicy] = None,
        breaker: Optional[CircuitBreakerPolicy] = None,
        resilience: Optional[ResilienceConfig] = None,
        spool_dir: Optional[Union[str, Path]] = None,
        spool_fsync: bool = True,
        on_group_done: Optional[Callable[[int, int], Any]] = None,
        frames: Optional[Sequence[bytes]] = None,
        num_clients: int = 4,
        records_per_client: int = 256,
        batch_size: Optional[int] = 64,
        seed: int = 20180610,
        frames_per_connection: Optional[int] = None,
        malformed_connections: int = 0,
        connect_timeout: Optional[float] = None,
        io_timeout: Optional[float] = None,
        read_chunk_bytes: int = 1 << 16,
        drain_every: int = 16,
    ):
        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_protocol(spec)
        if (host is None) != (port is None):
            raise ProtocolConfigurationError(
                "host and port must be given together"
            )
        if (host is None) == (targets is None):
            raise ProtocolConfigurationError(
                "give either host/port (one collector) or targets "
                "(a topology), not both"
            )
        if max_retries < 0:
            raise ProtocolConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if retry_backoff < 0:
            raise ProtocolConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if num_clients < 1:
            raise ProtocolConfigurationError(
                f"num_clients must be >= 1, got {num_clients}"
            )
        if frames is None and records_per_client < 1:
            raise ProtocolConfigurationError(
                f"records_per_client must be >= 1, got {records_per_client}"
            )
        if frames_per_connection is not None and frames_per_connection < 1:
            raise ProtocolConfigurationError(
                f"frames_per_connection must be >= 1, got {frames_per_connection}"
            )
        if malformed_connections < 0:
            raise ProtocolConfigurationError(
                f"malformed_connections must be >= 0, got {malformed_connections}"
            )
        if drain_every < 1:
            raise ProtocolConfigurationError(
                f"drain_every must be >= 1, got {drain_every}"
            )
        self._spec = spec
        self._protocol = spec.build()
        self._domain = domain
        # Runtime import: repro.topology imports repro.server, so pulling
        # the router in at module scope would be a cycle.
        from ..topology.router import make_router

        self._router = make_router(
            routing,
            targets if targets is not None else [(host, port)],
        )
        self._token_prefix = (
            str(token_prefix) if token_prefix is not None else None
        )
        self._failover = failover
        # Addresses that have accepted at least one connection: their
        # reconnects may take the short failover path in _connect.
        self._contacted: set = set()
        # Policy resolution: explicit policy objects win, then the
        # resilience bundle, then the legacy knobs (mapped onto the exact
        # schedule they always produced: linear backoff, no jitter).
        if retry is None:
            if resilience is not None:
                retry = resilience.retry
            else:
                retry = RetryPolicy(
                    max_retries=int(max_retries),
                    base_delay=float(retry_backoff),
                    max_delay=float(retry_backoff) * max(int(max_retries), 1),
                    growth="linear",
                    jitter="none",
                )
        self._retry_policy = retry
        self._max_retries = retry.max_retries
        self._retry_backoff = retry.base_delay
        if timeouts is None:
            timeouts = (
                resilience.timeouts
                if resilience is not None
                else default_timeout_policy()
            )
        if connect_timeout is not None:
            timeouts = replace(timeouts, connect=float(connect_timeout))
        if io_timeout is not None:
            timeouts = replace(timeouts, io=float(io_timeout))
        self._timeouts = timeouts
        if breaker is None and resilience is not None:
            breaker = resilience.breaker
        self._breaker_policy = breaker
        self._breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
        if spool_dir is not None and self._token_prefix is None:
            raise ProtocolConfigurationError(
                "spool_dir requires a token_prefix: replaying spooled "
                "groups without idempotency tokens could double-fold them"
            )
        self._spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._spool_fsync = bool(spool_fsync)
        self._on_group_done = on_group_done
        self._frames = list(frames) if frames is not None else None
        self._num_clients = num_clients
        self._records_per_client = records_per_client
        self._batch_size = batch_size
        self._seed = seed
        self._frames_per_connection = frames_per_connection
        self._malformed_connections = malformed_connections
        self._connect_timeout = self._timeouts.connect
        self._io_timeout = self._timeouts.io
        self._read_chunk_bytes = read_chunk_bytes
        self._drain_every = int(drain_every)
        self._hello = encode_control(
            HELLO, hello_payload(spec, domain.attributes)
        )

    @property
    def router(self):
        """The live :class:`~repro.topology.Router` dealing out groups."""
        return self._router

    # ------------------------------------------------------------------ #
    # frame preparation

    @staticmethod
    def frames_for_dataset(
        spec, dataset, batch_size: Optional[int] = None, rng: RngLike = None
    ) -> List[bytes]:
        """Encode a dataset into frames with ``run_streaming``'s rng discipline.

        One child generator per batch (the caller's generator itself for a
        single batch), so — for the same dataset, seed and batch size — the
        frames carry exactly the reports an in-process
        ``run_streaming(dataset, rng, batch_size=...)`` would aggregate.
        Collecting them over sockets therefore finalizes to bit-for-bit
        identical estimates, which is the service's end-to-end equality
        proof.
        """
        if not isinstance(spec, ProtocolSpec):
            spec = ProtocolSpec.from_protocol(spec)
        protocol = spec.build()
        generator = ensure_rng(rng)
        num_batches = dataset.num_batches(batch_size)
        if num_batches == 1:
            batch_rngs = [generator]
        else:
            batch_rngs = spawn_rngs(generator, num_batches)
        return [
            protocol.encode_batch(chunk, rng=chunk_rng).to_bytes()
            for chunk, chunk_rng in zip(
                dataset.iter_batches(batch_size), batch_rngs
            )
        ]

    def client_frames(self) -> List[List[bytes]]:
        """Each client's frame list, deterministic in the constructor args.

        Pre-encoded ``frames`` are dealt round-robin; otherwise client ``i``
        encodes its own synthetic records with the ``i``-th child generator
        of ``seed``.  Exposed so tests (and CI) can rebuild the exact
        submitted reports for an in-process baseline.
        """
        per_client: List[List[bytes]] = [[] for _ in range(self._num_clients)]
        if self._frames is not None:
            for position, frame in enumerate(self._frames):
                per_client[position % self._num_clients].append(frame)
            return per_client
        client_rngs = spawn_rngs(
            np.random.default_rng(self._seed), self._num_clients
        )
        dimension = self._domain.dimension
        batch = self._batch_size or self._records_per_client
        for client_id, client_rng in enumerate(client_rngs):
            records = client_rng.integers(
                0, 2, size=(self._records_per_client, dimension), dtype=np.int8
            )
            for start in range(0, self._records_per_client, batch):
                chunk = records[start : start + batch]
                per_client[client_id].append(
                    self._protocol.encode_batch(chunk, rng=client_rng).to_bytes()
                )
        return per_client

    # ------------------------------------------------------------------ #
    # the fleet

    async def run(self) -> LoadReport:
        """Run the whole fleet; returns the aggregate :class:`LoadReport`."""
        per_client_frames = self.client_frames()
        results = [
            ClientResult(client_id=client_id)
            for client_id in range(self._num_clients)
        ]
        # Poison phase first (concurrently), payload phase second: every
        # injected fault is answered before the first valid frame ships, so
        # a server configured to stop after a known report count cannot
        # shut down while a poison exchange is still in flight.
        if self._malformed_connections:
            await asyncio.gather(
                *(
                    self._poison_connection(
                        results[position % self._num_clients]
                    )
                    for position in range(self._malformed_connections)
                )
            )
        # Time only the payload phase: throughput must not be diluted by
        # the fault-injection exchanges.
        started = time.monotonic()
        await asyncio.gather(
            *(
                self._run_client(results[client_id], frames)
                for client_id, frames in enumerate(per_client_frames)
            )
        )
        duration = time.monotonic() - started
        by_target: Dict[str, Dict[str, int]] = {}
        for result in results:
            for address, counts in result.acked_by_target.items():
                entry = by_target.setdefault(
                    address, {"frames": 0, "reports": 0, "groups": 0}
                )
                for key in entry:
                    entry[key] += int(counts.get(key, 0))
        return LoadReport(
            duration_seconds=duration,
            clients=len(results),
            connections=sum(result.connections for result in results),
            frames=sum(result.frames for result in results),
            bytes=sum(result.bytes for result in results),
            acked_frames=sum(result.acked_frames for result in results),
            acked_reports=sum(result.acked_reports for result in results),
            rejected_connections=sum(
                result.rejected_connections for result in results
            ),
            retries=sum(result.retries for result in results),
            recovered_groups=sum(
                result.recovered_groups for result in results
            ),
            spool_replays=sum(result.spool_replays for result in results),
            acked_by_target=by_target,
            per_client=list(results),
        )

    async def _run_client(
        self, result: ClientResult, frames: List[bytes]
    ) -> ClientResult:
        group_size = self._frames_per_connection or max(len(frames), 1)
        # All spool I/O runs inline on the event loop, on purpose.
        # Offloading it — asyncio.to_thread, a shared executor, even a
        # dedicated single worker — measurably *halves* fleet throughput
        # at 64 clients here: the moment a second thread issues
        # syscalls, every loop-thread syscall (socket send/recv, epoll)
        # pays a GIL handoff, and sandboxed kernels additionally
        # serialize syscalls across threads.  The lazy ReportSpool keeps
        # the inline cost to a handful of syscalls per client (open,
        # write, fsync, close), which a workload of realistic size
        # amortizes to noise.
        spool = self._open_spool(result.client_id)
        try:
            for group_index, start in enumerate(
                range(0, len(frames), group_size)
            ):
                token = self._token(result.client_id, group_index)
                group_frames = frames[start : start + group_size]
                if spool is not None:
                    committed = spool.committed_groups().get(token)
                    if committed is not None:
                        # A previous incarnation of this client delivered
                        # and committed the group — credit the durable
                        # counts, never resend.
                        result.acked_frames += int(
                            committed.get("frames", 0)
                        )
                        result.acked_reports += int(
                            committed.get("reports", 0)
                        )
                        result.spool_replays += 1
                        _loadgen_counters()[4].labels(
                            outcome="spool_replay"
                        ).inc()
                        address = committed.get("address")
                        if address:
                            result.credit_target(
                                str(address),
                                int(committed.get("frames", 0)),
                                int(committed.get("reports", 0)),
                            )
                        if self._on_group_done is not None:
                            outcome = self._on_group_done(
                                result.client_id, group_index
                            )
                            if inspect.isawaitable(outcome):
                                await outcome
                        continue
                    recorded = spool.frames_for(token)
                    if recorded is not None:
                        # Appended but never committed: the crash landed
                        # mid-delivery.  Replay the *recorded* bytes under
                        # the same idempotency token — the collector
                        # dedupes if the ACK was lost after folding.
                        group_frames = recorded
                        result.spool_replays += 1
                        _loadgen_counters()[4].labels(
                            outcome="spool_replay"
                        ).inc()
                    else:
                        # One inline open+write+fsync, strictly before
                        # the group touches the wire.
                        spool.append_group(token, group_frames)
                delivery = await self._deliver_group(
                    result, group_index, group_frames, token=token
                )
                if spool is not None and delivery is not None:
                    # Commit markers are written without a sync (their
                    # loss is replay-safe), so this never blocks on disk.
                    spool.commit_group(token, delivery)
                if self._on_group_done is not None:
                    outcome = self._on_group_done(result.client_id, group_index)
                    if inspect.isawaitable(outcome):
                        await outcome
        finally:
            if spool is not None:
                spool.close()
        return result

    def _token(self, client_id: int, group_index: int) -> Optional[str]:
        if self._token_prefix is None:
            return None
        return f"{self._token_prefix}/c{client_id}/g{group_index}"

    def _breaker_for(self, address) -> Optional[CircuitBreaker]:
        if self._breaker_policy is None:
            return None
        key = (address[0], int(address[1]))
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breaker_policy.build(f"{key[0]}:{key[1]}")
            self._breakers[key] = breaker
        return breaker

    def _open_spool(self, client_id: int) -> Optional[ReportSpool]:
        if self._spool_dir is None:
            return None
        return ReportSpool(
            self._spool_dir / f"client-{client_id:04d}.spool",
            fsync=self._spool_fsync,
        )

    async def _deliver_group(
        self,
        result: ClientResult,
        group_index: int,
        frames: List[bytes],
        token: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Deliver one group exactly once, across failures.

        The loop: route, send, and on failure ask the ``failover`` oracle
        about the address.  Three verdicts are possible —

        * not dead (or no oracle): transient failure, retry the same
          address under the :class:`~repro.resilience.RetryPolicy`'s
          backoff schedule until it says stop;
        * dead, our token recovered: the group already counts in the dead
          collector's recovered checkpoint — record the ACK'd totals the
          collector durably wrote, do NOT replay;
        * dead, token not recovered: the group was never acknowledged —
          replay it to a surviving collector (which has never seen this
          token, so no dedupe is needed there).

        A per-target :class:`~repro.resilience.CircuitBreaker` (when
        configured) fails the send fast while the target is tripped; an
        open circuit counts as a transient failure and waits out the
        cooldown.

        Returns the delivery receipt ``{"address", "frames", "reports",
        "recovered"}`` used to commit the group into the client spool, or
        ``None`` if the send path reported no counts.
        """
        if token is None:
            token = self._token(result.client_id, group_index)
        attempts = 0
        started = time.monotonic()
        # Resolve the target once per group and hold it across transient
        # retries: RoundRobinRouter advances on every route() call (the key
        # is ignored), so routing inside the loop would send a retry after
        # a lost ACK to a collector that has never seen this group's
        # idempotency token — folding the group a second time.  Only a
        # dead verdict (which takes the address out of rotation) picks a
        # new target.
        address = self._router.route(key=(result.client_id, group_index))
        while True:
            breaker = self._breaker_for(address)
            try:
                if breaker is not None:
                    breaker.check()
                counts = await self._send_group(
                    result, frames, address, token
                )
            except (CollectionServiceError, CircuitOpenError) as error:
                breaker_open = isinstance(error, CircuitOpenError)
                if breaker is not None and not breaker_open:
                    breaker.record_failure()
                verdict = await self._consult_failover(address)
                if verdict.get("dead"):
                    self._router.mark_dead(address)
                    recovered = verdict.get("acked_tokens") or {}
                    if token is not None and token in recovered:
                        recovered_counts = recovered[token]
                        acked_frames = int(
                            recovered_counts.get("frames", 0)
                        )
                        acked_reports = int(
                            recovered_counts.get("reports", 0)
                        )
                        result.acked_frames += acked_frames
                        result.acked_reports += acked_reports
                        result.recovered_groups += 1
                        _loadgen_counters()[4].labels(
                            outcome="recovered"
                        ).inc()
                        target = f"{address[0]}:{address[1]}"
                        result.credit_target(
                            target, acked_frames, acked_reports
                        )
                        return {
                            "address": target,
                            "frames": acked_frames,
                            "reports": acked_reports,
                            "recovered": True,
                        }
                    # Replay to a survivor: new target, fresh attempts.
                    address = self._router.route(
                        key=(result.client_id, group_index)
                    )
                    attempts = 0
                    started = time.monotonic()
                    result.retries += 1
                    _loadgen_counters()[3].inc()
                    continue
                attempts += 1
                if not self._retry_policy.should_retry(attempts, started):
                    raise
                result.retries += 1
                _loadgen_counters()[3].inc()
                delay = self._retry_policy.delay(attempts)
                if breaker_open:
                    delay = max(delay, error.retry_after)
                if delay > 0:
                    await asyncio.sleep(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                target = f"{address[0]}:{address[1]}"
                if counts is None:
                    # Test doubles stub _send_group without a return value;
                    # fall back to what the client put on the wire.
                    return {
                        "address": target,
                        "frames": len(frames),
                        "reports": 0,
                        "recovered": False,
                    }
                acked_frames, acked_reports = counts
                result.credit_target(target, acked_frames, acked_reports)
                return {
                    "address": target,
                    "frames": int(acked_frames),
                    "reports": int(acked_reports),
                    "recovered": False,
                }

    async def _consult_failover(self, address) -> Dict[str, Any]:
        if self._failover is None:
            return {"dead": False}
        verdict = self._failover(address)
        if inspect.isawaitable(verdict):
            verdict = await verdict
        if not isinstance(verdict, dict):
            raise CollectionServiceError(
                f"failover oracle returned {type(verdict).__name__}, "
                "expected a dict verdict"
            )
        return verdict

    async def _send_group(
        self,
        result: ClientResult,
        frames: List[bytes],
        address: Tuple[str, int],
        token: Optional[str] = None,
    ) -> Tuple[int, int]:
        reader, writer = await self._connect(address)
        result.connections += 1
        try:
            try:
                channel = _ControlChannel(
                    reader, self._read_chunk_bytes, self._io_timeout
                )
                with trace.span("loadgen.send_group") as span:
                    span.annotate(frames=len(frames))
                    await self._handshake(writer, channel, token)
                    for position, frame in enumerate(frames, start=1):
                        writer.write(frame)
                        if position % self._drain_every == 0:
                            await writer.drain()
                        result.frames += 1
                        result.bytes += len(frame)
                    writer.write(encode_control(FIN))
                    await writer.drain()
                    ack = await channel.next_message()
            except (ConnectionError, OSError) as error:
                # Honor the CollectionServiceError contract on the write
                # side too: a server vanishing under writer.drain() must
                # not escape as a raw ConnectionResetError.
                raise CollectionServiceError(
                    f"server dropped the connection mid-session: {error}"
                ) from error
            if ack.kind != ACK:
                raise CollectionServiceError(
                    f"expected ACK after FIN, got {ack.kind}: {ack.payload}"
                )
            acked_frames = int(ack.payload.get("frames", 0))
            if acked_frames != len(frames):
                raise CollectionServiceError(
                    f"server acknowledged {acked_frames} frame(s), "
                    f"client sent {len(frames)}"
                )
            acked_reports = int(ack.payload.get("reports", 0))
            result.acked_frames += acked_frames
            result.acked_reports += acked_reports
            if metrics_enabled():
                frames_c, reports_c, bytes_c, _, groups_c = _loadgen_counters()
                frames_c.inc(acked_frames)
                reports_c.inc(acked_reports)
                bytes_c.inc(sum(len(frame) for frame in frames))
                groups_c.labels(outcome="delivered").inc()
            return acked_frames, acked_reports
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _poison_connection(self, result: ClientResult) -> None:
        """Handshake, then send garbage and expect a per-connection ERR."""
        reader, writer = await self._connect(
            self._router.route(key=("poison", result.client_id))
        )
        result.connections += 1
        try:
            channel = _ControlChannel(
                reader, self._read_chunk_bytes, self._io_timeout
            )
            await self._handshake(writer, channel)
            try:
                # The canonical bad frame the framing tests also feed the
                # decoders: rejected at the magic bytes, before any payload.
                writer.write(POISON_FRAME)
                await writer.drain()
                message = await channel.next_message()
            except (CollectionServiceError, ConnectionError, OSError):
                # The server dropped the connection without (or while
                # sending) an ERR frame — the rejection still happened.
                message = None
            if message is not None and message.kind != ERR:
                raise CollectionServiceError(
                    f"poison connection expected ERR, got {message.kind}"
                )
            result.rejected_connections += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        writer,
        channel: _ControlChannel,
        token: Optional[str] = None,
    ) -> None:
        hello = (
            self._hello
            if token is None
            else encode_control(
                HELLO,
                hello_payload(self._spec, self._domain.attributes, token=token),
            )
        )
        try:
            writer.write(hello)
            await writer.drain()
        except (ConnectionError, OSError) as error:
            raise CollectionServiceError(
                f"server dropped the connection during the handshake: {error}"
            ) from error
        response = await channel.next_message()
        if response.kind == ERR:
            reason = response.payload.get("error", "rejected")
            diff = response.payload.get("diff")
            detail = "\n  ".join([reason] + (diff or []))
            raise CollectionServiceError(
                f"server rejected the HELLO handshake: {detail}"
            )
        if response.kind != OK:
            raise CollectionServiceError(
                f"expected OK after HELLO, got {response.kind}"
            )

    async def _connect(self, address: Tuple[str, int]):
        """Open one connection, retrying until ``connect_timeout`` passes.

        Retrying covers the CI shape where the fleet starts while the
        server process is still binding its socket — so a collector's
        *first* contact always gets the full ``connect_timeout`` grace
        window, oracle or not.  Once an address has accepted a connection,
        a refusal means the collector died rather than "still binding": a
        dead collector refuses instantly, so post-failure reconnects cap
        the wait at one backoff tick when an oracle is available to
        consult instead.
        """
        host, port = address
        timeout = (
            min(self._connect_timeout, max(self._retry_backoff, 0.05))
            if self._failover is not None and address in self._contacted
            else self._connect_timeout
        )
        deadline = time.monotonic() + timeout
        while True:
            try:
                connection = await asyncio.open_connection(host, port)
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise CollectionServiceError(
                        f"cannot connect to {host}:{port} within "
                        f"{timeout:.1f}s: {error}"
                    ) from error
                await asyncio.sleep(CONNECT_POLL_SECONDS)
            else:
                self._contacted.add(address)
                return connection
