"""The asyncio network collection service.

:class:`CollectionServer` is the deployment-shaped aggregator: an
``asyncio`` TCP server that accepts report streams framed by
:mod:`repro.server.framing`, shards connections round-robin across
per-worker :class:`~repro.service.AggregationSession`\\ s, and finalizes —
through the sessions' exact ``merge`` algebra — to the same estimates as an
in-process :meth:`~repro.protocols.base.MarginalReleaseProtocol.run_streaming`
over the same encoded reports, bit for bit.

Each connection follows the session protocol::

    client                                server
    ------                                ------
    HELLO {spec, spec_hash, attributes}
                                          OK {spec_hash, shard}   (or ERR + close)
    report frame (RPRB bytes)  xN
    FIN
                                          ACK {frames, reports, bytes}

Misbehaving clients — spec mismatches, malformed or truncated frames,
report frames before ``HELLO`` — are rejected *per connection*: the server
answers with an ``ERR`` control frame carrying the reason (and the spec
diff, when that is the reason), closes that connection, and keeps serving
everyone else.  Backpressure is structural: reads happen in bounded chunks
against ``asyncio``'s flow-controlled stream buffer, and the frame decoder
never holds more than one maximal frame (``max_frame_bytes``) plus one
read chunk per connection.

The server checkpoints its shards periodically and on shutdown (atomic
temp-file-plus-rename writes via :meth:`AggregationSession.checkpoint`), so
a crashed collector resumes from ``merge_checkpoints`` without losing the
previous checkpoint to a torn write.
"""

from __future__ import annotations

import asyncio
import base64
import logging
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.domain import Domain
from ..core.exceptions import (
    ProtocolConfigurationError,
    ReproError,
    WireFormatError,
)
from ..observability import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    trace,
)
from ..observability.scrape import MetricsScrapeServer
from ..protocols.wire import MAX_PAYLOAD_BYTES
from ..service.session import AggregationSession
from ..service.spec import ProtocolSpec
from .framing import (
    ACK,
    FIN,
    HELLO,
    OK,
    ERR,
    PULL,
    STATE,
    STATS,
    ControlMessage,
    FrameDecoder,
    encode_control,
)
from .handshake import check_hello, spec_hash

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_BATCH_MAX_USERS",
    "DEFAULT_BATCH_WINDOW_SECONDS",
    "DURABLE_STATE_FILENAME",
    "CollectionServer",
    "install_uvloop",
    "merge_checkpoints",
]

_logger = logging.getLogger(__name__)

#: Default per-frame cap for network submissions (64 MiB).  Far above any
#: realistic report batch, far below the codec's 1 GiB hard limit — a
#: connection cannot make one shard buffer a gigabyte on a forged header.
DEFAULT_MAX_FRAME_BYTES = 64 << 20

#: Default micro-batch flush threshold: pending user reports per shard.
DEFAULT_BATCH_MAX_USERS = 8192

#: Default micro-batch flush ladder timeout (seconds).
DEFAULT_BATCH_WINDOW_SECONDS = 0.005

#: Filename of the single-file transactional checkpoint written by a
#: collector running in ``durable_acks`` mode (the whole merged state plus
#: the acknowledged-group token map, refreshed atomically before each ACK).
DURABLE_STATE_FILENAME = "state.npz"

PathLike = Union[str, Path]


def install_uvloop(required: bool = False) -> bool:
    """Install the uvloop event-loop policy when the package is available.

    The collection server is pure-asyncio, so ``uvloop`` is a drop-in
    accelerator for its socket layer.  It is an optional dependency
    (``pip install .[fast]``): when absent this logs a warning and leaves
    the default policy in place — unless ``required``, which raises
    :class:`ProtocolConfigurationError` instead.
    """
    try:
        import uvloop
    except ImportError:
        if required:
            raise ProtocolConfigurationError(
                "uvloop is not installed; pip install '.[fast]' to enable it"
            ) from None
        _logger.warning(
            "uvloop is not installed; staying on the default asyncio "
            "event loop (pip install '.[fast]' to enable it)"
        )
        return False
    uvloop.install()
    _logger.info("uvloop event-loop policy installed")
    return True


class _ShardBatcher:
    """Per-shard micro-batching queue for decoded report batches.

    Connection handlers decode frames off the wire and :meth:`enqueue`
    them here; the batcher coalesces frames from every connection mapped
    to its shard and folds them into the shard session as *one*
    accumulator update per flush
    (:meth:`AggregationSession.submit_decoded`), amortising the per-update
    kernel dispatch across connections.  Exactness is inherited from the
    concatenation algebra — see
    :func:`~repro.protocols.wire.concat_report_batches`.

    Flush triggers: pending users reaching ``max_users``, the
    ``window_seconds`` ladder timer, a connection's ``FIN`` (the handler
    flushes synchronously so its ACK covers its reports), and the server's
    stop/checkpoint/finalize paths.

    Everything runs on the event-loop thread, so there are no locks, and
    every flush is synchronous: by the time :meth:`flush` returns, each
    pending frame is either in the session or its connection's
    ``on_error`` sink has been called.  When a coalesced update fails, the
    batch is replayed frame by frame so the error lands only on the sinks
    of the frames that caused it (``on_discard`` then reverses the
    handler's optimistic counter increments for those frames).  Per-frame
    sinks instead of per-frame futures keep the happy path free of event
    loop bookkeeping — at ingest rates the future churn is measurable.
    """

    def __init__(
        self,
        session: AggregationSession,
        *,
        max_users: int,
        window_seconds: float,
        on_discard: Callable[[int, int, int], None],
    ):
        self._session = session
        self._max_users = max_users
        self._window = window_seconds
        self._on_discard = on_discard
        self._pending: List[tuple] = []  # (decoded batch, wire bytes, sink)
        self._pending_users = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def pending_frames(self) -> int:
        return len(self._pending)

    def enqueue(
        self,
        decoded,
        nbytes: int,
        on_error: Callable[[BaseException], None],
    ) -> None:
        """Queue one decoded batch.

        ``on_error`` is called — synchronously, during whichever flush
        drains this frame — if and only if the batch is rejected.
        """
        self._pending.append((decoded, nbytes, on_error))
        self._pending_users += int(decoded.num_users)
        if self._pending_users >= self._max_users:
            self.flush()
        elif self._timer is None:
            if self._loop is None:
                self._loop = asyncio.get_running_loop()
            self._timer = self._loop.call_later(self._window, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self.flush()

    def flush(self) -> None:
        """Fold everything pending into the shard session, synchronously."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        users, self._pending_users = self._pending_users, 0
        if not pending:
            return
        try:
            with trace.span("ingest.flush") as span:
                span.annotate(frames=len(pending), users=users)
                self._session.submit_decoded(
                    [decoded for decoded, _, _ in pending],
                    wire_bytes=sum(nbytes for _, nbytes, _ in pending),
                )
        except ReproError:
            # One bad batch poisons a coalesced update.  Replay frame by
            # frame so the error lands on the connection that sent it and
            # everyone else's reports still count.
            for decoded, nbytes, on_error in pending:
                try:
                    self._session.submit_decoded([decoded], wire_bytes=nbytes)
                except ReproError as error:
                    self._on_discard(1, int(decoded.num_users), nbytes)
                    on_error(error)


class _Reject(Exception):
    """Close this connection with an ``ERR`` frame; the server keeps running."""

    def __init__(self, reason: str, diff: Optional[List[str]] = None):
        super().__init__(reason)
        self.reason = reason
        self.diff = list(diff) if diff else None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.reason}
        if self.diff:
            body["diff"] = self.diff
        return body


class CollectionServer:
    """A sharded, checkpointing TCP collector for one protocol spec.

    Parameters
    ----------
    spec:
        The collection contract (a :class:`ProtocolSpec` or a live protocol
        instance), exactly as for :class:`AggregationSession`.
    domain:
        The attribute domain every client must report over.
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    shards:
        Number of independent :class:`AggregationSession` shards; incoming
        connections are assigned round-robin.  Estimates are shard-invariant
        by the accumulators' merge algebra.
    max_frame_bytes:
        Per-frame payload cap for this server (backpressure bound).
    batch_max_users, batch_window_seconds:
        The ingest micro-batching knobs: each shard coalesces decoded
        report frames (across connections) and folds them into its
        session as one accumulator update per flush.  A flush fires when
        the shard's pending user reports reach ``batch_max_users`` or
        ``batch_window_seconds`` after the first pending frame, whichever
        comes first (and always on FIN/stop/checkpoint).  Pure
        performance knobs: the estimates are grouping-invariant.
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several collector processes can
        share one address, the kernel load-balancing connections across
        them (the ``--processes`` tier; see
        :mod:`repro.server.multiproc`).
    checkpoint_dir, checkpoint_interval:
        When set, every shard is checkpointed to
        ``checkpoint_dir/shard-NN.npz`` every ``checkpoint_interval``
        seconds and once more on :meth:`stop`.
    stop_after_reports:
        When set, :meth:`serve_until_stopped` returns once this many user
        reports have been collected (the current connections drain first).
    report_observer:
        Optional callable invoked with signed user-report deltas as they
        are counted (positive on ingest, negative when a deferred flush
        rejects a frame) — the hook the multi-process tier uses to
        maintain a shared report counter.
    collector_id:
        Stable name this collector reports in ``STATE`` answers and stamps
        into its durable checkpoints (defaults to ``host:port``).  The
        topology tier keys fan-in merges and failure recovery by it.
    registry:
        The :class:`~repro.observability.MetricsRegistry` this server's
        counters live in.  Defaults to a fresh per-server registry (so
        side-by-side servers in one process never cross-count);
        :meth:`metrics_snapshot` merges it with the process-wide default
        registry, where deep instrumentation (kernel dispatch, resilience
        events, span histograms) accumulates.
    metrics_host, metrics_port:
        When ``metrics_port`` is set, :meth:`start` also binds a plain-HTTP
        Prometheus scrape endpoint (``GET /metrics``) on it serving
        :meth:`metrics_snapshot`; ``metrics_port=0`` picks a free port
        (read it back from :attr:`metrics_port`).
    durable_acks:
        Transactional ingest for the topology tier.  Report frames are
        held per connection and folded into the shard only at ``FIN`` —
        then the whole merged state (plus the acknowledged-group token
        map) is checkpointed atomically to
        ``checkpoint_dir/state.npz`` *before* the ``ACK`` goes out.  The
        last durable checkpoint therefore always contains every
        acknowledged group, which is what lets a supervisor re-merge a
        dead collector without losing ACK'd reports.  Clients may carry a
        ``token`` in their ``HELLO``; a replayed token is re-ACK'd with
        its recorded counts instead of double-folded, making retries
        idempotent.  Requires ``checkpoint_dir``; an existing
        ``state.npz`` there is restored on construction (crash restart).
    """

    def __init__(
        self,
        spec,
        domain: Domain,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_chunk_bytes: int = 1 << 16,
        batch_max_users: int = DEFAULT_BATCH_MAX_USERS,
        batch_window_seconds: float = DEFAULT_BATCH_WINDOW_SECONDS,
        reuse_port: bool = False,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_interval: Optional[float] = None,
        stop_after_reports: Optional[int] = None,
        drain_timeout: float = 10.0,
        report_observer: Optional[Callable[[int], None]] = None,
        collector_id: Optional[str] = None,
        durable_acks: bool = False,
        registry: Optional[MetricsRegistry] = None,
        metrics_host: str = "127.0.0.1",
        metrics_port: Optional[int] = None,
    ):
        if shards < 1:
            raise ProtocolConfigurationError(
                f"shard count must be >= 1, got {shards}"
            )
        if not 0 < max_frame_bytes <= MAX_PAYLOAD_BYTES:
            # Validated here, not per connection: a bad value must fail the
            # server at construction, never crash connection handlers.
            raise ProtocolConfigurationError(
                f"max_frame_bytes must be in (0, {MAX_PAYLOAD_BYTES}], "
                f"got {max_frame_bytes}"
            )
        if read_chunk_bytes < 1:
            raise ProtocolConfigurationError(
                f"read_chunk_bytes must be >= 1, got {read_chunk_bytes}"
            )
        if batch_max_users < 1:
            raise ProtocolConfigurationError(
                f"batch_max_users must be >= 1, got {batch_max_users}"
            )
        if batch_window_seconds <= 0:
            raise ProtocolConfigurationError(
                f"batch_window_seconds must be > 0, got {batch_window_seconds}"
            )
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ProtocolConfigurationError(
                "this platform does not support SO_REUSEPORT"
            )
        if checkpoint_interval is not None:
            if checkpoint_dir is None:
                raise ProtocolConfigurationError(
                    "checkpoint_interval requires checkpoint_dir"
                )
            if checkpoint_interval <= 0:
                raise ProtocolConfigurationError(
                    f"checkpoint_interval must be > 0, got {checkpoint_interval}"
                )
        if stop_after_reports is not None and stop_after_reports < 1:
            raise ProtocolConfigurationError(
                f"stop_after_reports must be >= 1, got {stop_after_reports}"
            )
        if durable_acks and checkpoint_dir is None:
            raise ProtocolConfigurationError(
                "durable_acks requires checkpoint_dir (the ACK is durable "
                "precisely because the state hits disk first)"
            )
        self._sessions = [
            AggregationSession(spec, domain) for _ in range(shards)
        ]
        self._spec = self._sessions[0].spec
        self._domain = domain
        # The handshake compares canonical forms so clients that spell
        # defaults differently (or tune pure performance knobs) still pass.
        self._canonical_spec = ProtocolSpec.from_protocol(
            self._sessions[0].protocol
        )
        self._tuning_options = self._sessions[0].protocol.tuning_options()
        self._spec_hash = spec_hash(self._canonical_spec)
        self._host = host
        self._requested_port = port
        self._max_frame_bytes = int(max_frame_bytes)
        self._read_chunk_bytes = int(read_chunk_bytes)
        self._reuse_port = bool(reuse_port)
        self._report_observer = report_observer
        self._batchers = [
            _ShardBatcher(
                session,
                max_users=int(batch_max_users),
                window_seconds=float(batch_window_seconds),
                on_discard=self._discount,
            )
            for session in self._sessions
        ]
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._checkpoint_interval = checkpoint_interval
        self._stop_after_reports = stop_after_reports
        self._drain_timeout = drain_timeout

        self._server: Optional[asyncio.AbstractServer] = None
        self._checkpoint_task: Optional[asyncio.Task] = None
        self._stop_event = asyncio.Event()
        self._handlers: set = set()
        self._writers: set = set()
        self._port: Optional[int] = None
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

        self._connections_total = 0
        self._connections_active = 0
        self._connections_completed = 0
        self._connections_rejected = 0
        self._connections_dropped = 0
        self._frames_total = 0
        self._reports_total = 0
        self._bytes_total = 0
        self._frames_discarded = 0
        self._reports_discarded = 0
        self._bytes_discarded = 0
        self._checkpoints_written = 0

        # The operational counters above stay plain ints — they steer
        # behaviour (stop_after_reports, ACK payloads) and must count
        # identically with metrics on or off.  The registry mirrors them as
        # monotonic counters (gross ingested + gross discarded, never the
        # net) via _sync_registry, which runs on every stats/snapshot read.
        self._registry = registry if registry is not None else MetricsRegistry()
        counter = self._registry.counter
        connections = counter(
            "repro_server_connections_total",
            "Connections by final outcome (opened counts at accept).",
            labels=("outcome",),
        )
        self._metric_counters = {
            "frames": counter(
                "repro_server_frames_total",
                "Report frames accepted off the wire (gross, pre-discount).",
            ),
            "reports": counter(
                "repro_server_reports_total",
                "User reports accepted off the wire (gross, pre-discount).",
            ),
            "bytes": counter(
                "repro_server_bytes_total",
                "Report payload bytes accepted off the wire (gross).",
            ),
            "frames_discarded": counter(
                "repro_server_frames_discarded_total",
                "Frames reversed after a deferred flush rejection.",
            ),
            "reports_discarded": counter(
                "repro_server_reports_discarded_total",
                "User reports reversed after a deferred flush rejection.",
            ),
            "bytes_discarded": counter(
                "repro_server_bytes_discarded_total",
                "Payload bytes reversed after a deferred flush rejection.",
            ),
            "connections_opened": connections.labels(outcome="opened"),
            "connections_completed": connections.labels(outcome="completed"),
            "connections_rejected": connections.labels(outcome="rejected"),
            "connections_dropped": connections.labels(outcome="dropped"),
            "checkpoints": counter(
                "repro_server_checkpoints_total", "Checkpoints written."
            ),
        }
        self._metric_synced: Dict[str, float] = {}
        self._metric_active = self._registry.gauge(
            "repro_server_connections_active", "Connections currently open."
        )
        self._metric_shard_reports = self._registry.gauge(
            "repro_server_shard_reports",
            "User reports folded into each shard session.",
            labels=("shard",),
        )
        self._metrics_host = metrics_host
        self._metrics_port_requested = metrics_port
        self._scrape_server: Optional[MetricsScrapeServer] = None

        self._explicit_collector_id = collector_id
        self._durable_acks = bool(durable_acks)
        self._acked_tokens: Dict[str, Dict[str, int]] = {}
        if self._durable_acks:
            self._resume_durable_state()

    def _resume_durable_state(self) -> None:
        """Fold a previous ``state.npz`` back in (crash-restart path).

        A ``state.npz`` that fails restore — zero bytes, torn zip, or an
        integrity-digest mismatch — is quarantined to ``*.corrupt`` with a
        readable report and the collector starts empty, rather than
        refusing to serve: clients hold the idempotency tokens and will
        replay whatever the lost state contained.
        """
        state_path = self._checkpoint_dir / DURABLE_STATE_FILENAME
        if not state_path.exists():
            return
        try:
            restored = AggregationSession.restore(state_path)
        except WireFormatError as error:
            from ..resilience.integrity import quarantine_checkpoint

            quarantined, report = quarantine_checkpoint(
                state_path, f"durable state failed restore on startup: {error}"
            )
            _logger.error(
                "durable state %s is corrupt (%s); quarantined to %s "
                "(report: %s); starting empty — clients will replay "
                "unacknowledged groups",
                state_path,
                error,
                quarantined,
                report,
            )
            return
        self._sessions[0].merge(restored)
        tokens = restored.checkpoint_extra.get("acked_tokens", {})
        if isinstance(tokens, dict):
            self._acked_tokens.update(
                {str(key): dict(value) for key, value in tokens.items()}
            )
        metadata = restored.metadata
        self._reports_total = restored.num_reports
        self._frames_total = int(metadata["wire_batches"])
        self._bytes_total = int(metadata["wire_bytes_total"])
        _logger.info(
            "resumed %d durable report(s) across %d acknowledged group(s) "
            "from %s",
            restored.num_reports,
            len(self._acked_tokens),
            state_path,
        )

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> Optional[int]:
        """The bound port (``None`` before :meth:`start`)."""
        return self._port

    @property
    def metrics_port(self) -> Optional[int]:
        """The scrape endpoint's bound port (``None`` when not serving)."""
        if self._scrape_server is not None:
            return self._scrape_server.port
        return None

    @property
    def registry(self) -> MetricsRegistry:
        """This server's own metrics registry."""
        return self._registry

    @property
    def collector_id(self) -> str:
        """The stable name this collector signs STATE answers with."""
        if self._explicit_collector_id is not None:
            return self._explicit_collector_id
        return f"{self._host}:{self._port or self._requested_port}"

    @property
    def durable_acks(self) -> bool:
        return self._durable_acks

    @property
    def acked_tokens(self) -> Dict[str, Dict[str, int]]:
        """Recorded counts per acknowledged group token (a copy)."""
        return {token: dict(counts) for token, counts in self._acked_tokens.items()}

    @property
    def num_shards(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> Sequence[AggregationSession]:
        """The live shard sessions (read them, don't mutate them)."""
        return tuple(self._sessions)

    @property
    def num_reports(self) -> int:
        return sum(session.num_reports for session in self._sessions)

    @property
    def stop_requested(self) -> bool:
        return self._stop_event.is_set()

    def _sync_registry(self) -> None:
        """Mirror the operational ints into the registry's monotonic series.

        The gross quantities (ingested, discarded) only ever grow, so each
        sync advances the registry counters by the delta since the last
        sync — the exported series stay monotonic even though the net
        operational counters can step backwards on a discount.
        """
        from ..observability.metrics import metrics_enabled

        if not metrics_enabled():
            return
        values = {
            "frames": self._frames_total + self._frames_discarded,
            "reports": self._reports_total + self._reports_discarded,
            "bytes": self._bytes_total + self._bytes_discarded,
            "frames_discarded": self._frames_discarded,
            "reports_discarded": self._reports_discarded,
            "bytes_discarded": self._bytes_discarded,
            "connections_opened": self._connections_total,
            "connections_completed": self._connections_completed,
            "connections_rejected": self._connections_rejected,
            "connections_dropped": self._connections_dropped,
            "checkpoints": self._checkpoints_written,
        }
        for key, value in values.items():
            delta = value - self._metric_synced.get(key, 0)
            if delta > 0:
                self._metric_counters[key].inc(delta)
                self._metric_synced[key] = value
        self._metric_active.set(self._connections_active)
        for index, session in enumerate(self._sessions):
            self._metric_shard_reports.labels(shard=f"{index:02d}").set(
                session.num_reports
            )

    def metrics_snapshot(self) -> MetricsSnapshot:
        """This server's registry merged with the process-wide one.

        The per-server registry holds the ingest counters; the process
        registry holds everything the deep instrumentation records (span
        histograms, kernel dispatch, resilience events).  STATS answers
        and the scrape endpoint both serve this merged view.
        """
        self._sync_registry()
        snapshot = self._registry.snapshot()
        process = get_registry()
        if process is not self._registry:
            snapshot = snapshot.merge(process.snapshot())
        return snapshot

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot of the server's counters."""
        self._sync_registry()
        now = time.monotonic()
        elapsed = None
        if self._started_at is not None:
            elapsed = (self._stopped_at or now) - self._started_at
        return {
            "address": {"host": self._host, "port": self._port},
            "collector_id": self.collector_id,
            "durable_acks": self._durable_acks,
            "acked_groups": len(self._acked_tokens),
            "spec": self._spec.to_dict(),
            "spec_hash": self._spec_hash,
            "num_attributes": len(self._domain.attributes),
            "uptime_seconds": elapsed,
            "connections": {
                "total": self._connections_total,
                "active": self._connections_active,
                "completed": self._connections_completed,
                "rejected": self._connections_rejected,
                "dropped": self._connections_dropped,
            },
            "frames": self._frames_total,
            "reports": self._reports_total,
            "bytes": self._bytes_total,
            "reports_per_second": (
                self._reports_total / elapsed if elapsed else None
            ),
            "shard_reports": [
                session.num_reports for session in self._sessions
            ],
            "checkpoints_written": self._checkpoints_written,
        }

    # ------------------------------------------------------------------ #
    # lifecycle

    async def start(self) -> "CollectionServer":
        """Bind the listening socket and start accepting clients."""
        if self._server is not None:
            raise ProtocolConfigurationError("the server is already started")
        # A stopped server may be started again (the shard sessions carry
        # over); clear any stale stop request so serve_until_stopped serves.
        self._stop_event.clear()
        extra = {"reuse_port": True} if self._reuse_port else {}
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._requested_port, **extra
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self._metrics_port_requested is not None:
            self._scrape_server = MetricsScrapeServer(
                self.metrics_snapshot,
                host=self._metrics_host,
                port=self._metrics_port_requested,
            )
            await self._scrape_server.start()
            _logger.info(
                "metrics scrape endpoint on http://%s:%d/metrics",
                self._metrics_host,
                self._scrape_server.port,
            )
        if self._checkpoint_interval is not None:
            self._checkpoint_task = asyncio.create_task(
                self._checkpoint_loop()
            )
        _logger.info(
            "collection server for %s listening on %s:%d (%d shard(s))",
            self._spec.describe(),
            self._host,
            self._port,
            self.num_shards,
        )
        return self

    def request_stop(self) -> None:
        """Ask :meth:`serve_until_stopped` to shut the server down."""
        self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (or ``stop_after_reports``) fires.

        Starts the server if :meth:`start` was not called yet, then blocks
        until the stop condition, drains in-flight connections and shuts
        down (writing a final checkpoint when configured).
        """
        if self._server is None:
            await self.start()
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting clients, drain handlers, write a final checkpoint."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._handlers:
            done, pending = await asyncio.wait(
                set(self._handlers), timeout=self._drain_timeout
            )
            if pending:
                _logger.warning(
                    "force-closing %d connection(s) still open after the "
                    "%.1fs drain timeout",
                    len(pending),
                    self._drain_timeout,
                )
                for writer in list(self._writers):
                    writer.close()
                await asyncio.gather(*pending, return_exceptions=True)
        self._flush_all()
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
            self._checkpoint_task = None
        if self._checkpoint_dir is not None:
            self.checkpoint()
        if self._scrape_server is not None:
            await self._scrape_server.stop()
            self._scrape_server = None
        self._stopped_at = time.monotonic()
        self._server = None

    # ------------------------------------------------------------------ #
    # aggregation results

    def _flush_all(self) -> None:
        """Flush every shard's pending micro-batch into its session."""
        for batcher in self._batchers:
            batcher.flush()

    def _discount(self, frames: int, users: int, nbytes: int) -> None:
        """Reverse optimistic counter increments for flush-rejected frames."""
        self._frames_total -= frames
        self._reports_total -= users
        self._bytes_total -= nbytes
        self._frames_discarded += frames
        self._reports_discarded += users
        self._bytes_discarded += nbytes
        if self._report_observer is not None:
            self._report_observer(-users)

    def combined_session(self) -> AggregationSession:
        """A fresh session holding every shard's state, shards untouched."""
        self._flush_all()
        combined = AggregationSession(self._spec, self._domain)
        for session in self._sessions:
            combined.merge(session)
        return combined

    def finalize(self):
        """Merge the shards and finalize to the protocol's estimator."""
        return self.combined_session().snapshot()

    def checkpoint(self) -> List[Path]:
        """Checkpoint every shard to ``checkpoint_dir/shard-NN.npz`` now.

        In ``durable_acks`` mode the checkpoint is instead the single
        transactional ``state.npz`` (merged shards + token map) — one file,
        so there is never a torn multi-file snapshot to recover from.
        """
        if self._checkpoint_dir is None:
            raise ProtocolConfigurationError(
                "this server was built without a checkpoint_dir"
            )
        if self._durable_acks:
            return [self.durable_checkpoint()]
        with trace.span("server.checkpoint") as span:
            self._flush_all()
            paths = []
            for index, session in enumerate(self._sessions):
                paths.append(
                    session.checkpoint(
                        self._checkpoint_dir / f"shard-{index:02d}.npz"
                    )
                )
            span.annotate(shards=len(paths))
        self._checkpoints_written += 1
        return paths

    def durable_checkpoint(self) -> Path:
        """Atomically write the merged state + token map to ``state.npz``."""
        if self._checkpoint_dir is None:
            raise ProtocolConfigurationError(
                "this server was built without a checkpoint_dir"
            )
        with trace.span("server.checkpoint.durable"):
            combined = self.combined_session()
            path = combined.checkpoint(
                self._checkpoint_dir / DURABLE_STATE_FILENAME,
                extra={
                    "collector_id": self.collector_id,
                    "acked_tokens": self._acked_tokens,
                },
            )
        self._checkpoints_written += 1
        return path

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self._checkpoint_interval)
            try:
                self.checkpoint()
            except OSError as error:  # disk full, permissions — keep serving
                _logger.error("periodic checkpoint failed: %s", error)

    # ------------------------------------------------------------------ #
    # connection handling

    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._writers.add(writer)
        try:
            await self._handle_connection(reader, writer)
        except Exception:  # pragma: no cover - last-resort guard
            _logger.exception("connection handler crashed")
        finally:
            self._handlers.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_connection(self, reader, writer) -> None:
        index = self._connections_total
        self._connections_total += 1
        self._connections_active += 1
        shard_index = index % len(self._sessions)
        shard = self._sessions[shard_index]
        batcher = self._batchers[shard_index]
        # Report frames are decoded here but folded in by the shard
        # batcher, possibly while this handler is blocked reading the next
        # chunk.  Every flush is synchronous, so a flush failure of one of
        # OUR frames calls this sink in the flushing context: it sends the
        # ERR and closes the transport right there — the blocked read then
        # wakes with EOF — and the read loop stays a plain
        # ``await reader.read()`` with no per-chunk waiter machinery.
        flush_error: List[BaseException] = []

        def _on_flush_error(error: BaseException) -> None:
            if flush_error:
                return  # already rejected; only the first error reports
            flush_error.append(error)
            self._connections_rejected += 1
            _logger.info(
                "rejecting connection %d (bad submission): %s", index, error
            )
            try:
                writer.write(encode_control(ERR, {"error": str(error)}))
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass  # the peer is already gone; the rejection still counted

        greeted = False
        finished = False
        control_plane = False
        token: Optional[str] = None
        # durable_acks mode: decoded frames wait here and fold only at FIN
        # (one transactional group per connection); each entry is
        # ``(decoded batch, users, nbytes)``.
        pending: List[tuple] = []
        frames = reports = received = 0
        try:
            decoder = FrameDecoder(max_frame_bytes=self._max_frame_bytes)
            while not finished:
                chunk = await reader.read(self._read_chunk_bytes)
                if flush_error:
                    # The flush callback already sent the ERR, counted the
                    # rejection and closed the transport.
                    return
                if not chunk:
                    break
                decoder.absorb(chunk)
                for item in decoder.frames():
                    if isinstance(item, ControlMessage):
                        if item.kind == HELLO:
                            if greeted:
                                raise _Reject("duplicate HELLO")
                            problems = check_hello(
                                item.payload,
                                self._canonical_spec,
                                self._tuning_options,
                                self._domain.attributes,
                            )
                            if problems:
                                raise _Reject("spec mismatch", problems)
                            greeted = True
                            raw_token = item.payload.get("token")
                            token = (
                                str(raw_token)
                                if raw_token is not None
                                else None
                            )
                            writer.write(
                                encode_control(
                                    OK,
                                    {
                                        "spec_hash": self._spec_hash,
                                        "shard": shard_index,
                                    },
                                )
                            )
                            await writer.drain()
                        elif item.kind == PULL:
                            # The topology tier's fan-in probe: answer with
                            # stats or the full session state.  Allowed
                            # before HELLO — the puller is a control-plane
                            # peer, not a report client.
                            control_plane = True
                            await self._answer_pull(writer, item.payload)
                        elif item.kind == STATS:
                            # The observability probe (`repro watch`, live
                            # dashboards): stats plus the merged metrics
                            # snapshot.  Control-plane like PULL.
                            control_plane = True
                            await self._answer_stats(writer)
                        elif item.kind == FIN:
                            if not greeted:
                                raise _Reject("FIN before HELLO")
                            if self._durable_acks:
                                # Transactional group commit: fold, make the
                                # state durable, only then ACK.
                                ack_payload = self._fold_durable(
                                    shard, pending, token
                                )
                            else:
                                # Flush synchronously so every report this
                                # connection sent is in the shard (or
                                # rejected) before the ACK goes out.  A
                                # rejection has already sent the ERR through
                                # the error sink by the time flush()
                                # returns.
                                batcher.flush()
                                if flush_error:
                                    return
                                ack_payload = {
                                    "frames": frames,
                                    "reports": reports,
                                    "bytes": received,
                                }
                            writer.write(encode_control(ACK, ack_payload))
                            await writer.drain()
                            finished = True
                            break
                        else:
                            raise _Reject(
                                f"unexpected control frame {item.kind!r}"
                            )
                    else:
                        if not greeted:
                            raise _Reject("report frame before HELLO")
                        # Decode off the receive-buffer view (zero-copy up
                        # to the npz parse); a malformed payload raises
                        # right here, on the connection that sent it.
                        decoded = shard.protocol.decode_reports(item)
                        users = int(decoded.num_users)
                        nbytes = len(item)
                        if self._durable_acks:
                            pending.append((decoded, users, nbytes))
                        else:
                            batcher.enqueue(decoded, nbytes, _on_flush_error)
                        # Counters advance optimistically; _discount
                        # reverses them if the deferred flush rejects the
                        # frame (such a connection gets ERR, not ACK, so
                        # its per-connection counts are never reported).
                        frames += 1
                        reports += users
                        received += nbytes
                        self._frames_total += 1
                        self._reports_total += users
                        self._bytes_total += nbytes
                        if self._report_observer is not None:
                            self._report_observer(users)
                        if (
                            self._stop_after_reports is not None
                            and self._reports_total >= self._stop_after_reports
                        ):
                            self._stop_event.set()
            if finished:
                self._connections_completed += 1
            elif control_plane and decoder.at_frame_boundary:
                # A PULL peer that hangs up cleanly finished its business;
                # it never FINs because it never submits.
                self._connections_completed += 1
            else:
                # EOF without FIN: the client vanished.  Whatever complete
                # frames it sent were already aggregated; a trailing partial
                # frame is simply discarded with the connection.
                self._connections_dropped += 1
                if not decoder.at_frame_boundary:
                    _logger.debug(
                        "connection %d closed mid-frame (%d byte(s) buffered)",
                        index,
                        decoder.buffered_bytes,
                    )
        except _Reject as rejection:
            self._connections_rejected += 1
            _logger.info("rejecting connection %d: %s", index, rejection.reason)
            await self._send_error(writer, rejection.payload())
        except ReproError as error:
            # WireFormatError (malformed frames) and every other library
            # error a hostile stream can provoke — e.g. AggregationError on
            # report frames whose shapes don't match the domain — reject
            # this connection with a readable ERR, never crash the handler.
            self._connections_rejected += 1
            _logger.info(
                "rejecting connection %d (bad submission): %s", index, error
            )
            await self._send_error(writer, {"error": str(error)})
        except (ConnectionError, OSError):
            if flush_error:
                # The transport died because the flush callback closed it;
                # that path already counted the rejection.
                pass
            else:
                self._connections_dropped += 1
        finally:
            if pending:
                # Unfolded durable frames die with the connection: reverse
                # the optimistic counters so nothing unacknowledged counts.
                self._discount(
                    len(pending),
                    sum(users for _, users, _ in pending),
                    sum(nbytes for _, _, nbytes in pending),
                )
                pending.clear()
            self._connections_active -= 1

    def _fold_durable(
        self,
        shard: AggregationSession,
        pending: List[tuple],
        token: Optional[str],
    ) -> Dict[str, Any]:
        """Commit one connection's group: fold → checkpoint → ACK payload.

        The ordering is the durability argument: the token is recorded
        before the checkpoint is attempted and the checkpoint is written
        before the caller ACKs, so the last ``state.npz`` on disk always
        holds a superset of the acknowledged groups, and a replayed token
        is re-ACK'd with its recorded counts instead of double-folded.
        """
        group_frames = len(pending)
        group_users = sum(users for _, users, _ in pending)
        group_bytes = sum(nbytes for _, _, nbytes in pending)
        if token is not None and token in self._acked_tokens:
            # Replay of an already-committed group (client retry after a
            # lost ACK or a restart): drop the duplicate fold, reverse this
            # connection's optimistic counters, answer idempotently.
            del pending[:]
            self._discount(group_frames, group_users, group_bytes)
            recorded = dict(self._acked_tokens[token])
            recorded["duplicate"] = True
            return recorded
        batches = [decoded for decoded, _, _ in pending]
        del pending[:]
        try:
            shard.submit_decoded(batches, wire_bytes=group_bytes)
        except ReproError as error:
            self._discount(group_frames, group_users, group_bytes)
            raise _Reject(str(error)) from error
        payload = {
            "frames": group_frames,
            "reports": group_users,
            "bytes": group_bytes,
        }
        if token is not None:
            self._acked_tokens[token] = dict(payload)
        self.durable_checkpoint()
        return payload

    async def _answer_stats(self, writer) -> None:
        """Answer one ``STATS`` probe with stats + the metrics snapshot."""
        with trace.span("server.stats.answer"):
            body = {
                "collector_id": self.collector_id,
                "stats": self.stats(),
                "metrics": self.metrics_snapshot().state_dict(),
            }
            writer.write(encode_control(STATS, body))
        await writer.drain()

    async def _answer_pull(self, writer, payload: Dict[str, Any]) -> None:
        """Answer one ``PULL`` with a ``STATE`` frame (stats or state)."""
        what = payload.get("what", "state")
        if what == "stats":
            body: Dict[str, Any] = {
                "collector_id": self.collector_id,
                "what": "stats",
                "stats": self.stats(),
                "metrics": self.metrics_snapshot().state_dict(),
            }
        elif what == "state":
            combined = self.combined_session()
            blob = combined.checkpoint_bytes(
                extra={
                    "collector_id": self.collector_id,
                    "acked_tokens": self._acked_tokens,
                }
            )
            body = {
                "collector_id": self.collector_id,
                "what": "state",
                "reports": combined.num_reports,
                "acked_tokens": self._acked_tokens,
                "state_b64": base64.b64encode(blob).decode("ascii"),
            }
        else:
            raise _Reject(
                f"unknown PULL target {what!r}; expected 'stats' or 'state'"
            )
        with trace.span("topology.pull.answer") as span:
            span.annotate(what=what)
            writer.write(encode_control(STATE, body))
        await writer.drain()

    @staticmethod
    async def _send_error(writer, payload: Dict[str, Any]) -> None:
        try:
            writer.write(encode_control(ERR, payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the peer is already gone; the rejection still counted


def merge_checkpoints(
    paths: Union[PathLike, Sequence[PathLike]],
    *,
    expected_shards: Optional[int] = None,
    allow_partial: bool = False,
) -> AggregationSession:
    """Restore shard checkpoints and merge them into one session.

    The inverse of :meth:`CollectionServer.checkpoint`: hand it the
    ``shard-NN.npz`` files (any order) — or the checkpoint *directory*
    itself, which is globbed for them — and the returned session resumes
    the aggregation exactly where the collector stopped.

    A missing or partial checkpoint directory fails with a readable error
    naming the directory and the shard files found versus expected instead
    of leaking the underlying npz loading exception: pass
    ``expected_shards`` (the collector's shard count) to assert
    completeness, and any unreadable file is reported alongside the
    sibling checkpoints that *are* present.

    ``allow_partial=True`` is the degraded mode: an unreadable or
    integrity-broken shard is quarantined to ``*.corrupt`` (with a
    readable report next to it) and the merge continues over the healthy
    shards — at least one must survive.  The default strict mode raises
    instead, leaving every file in place.
    """
    if isinstance(paths, (str, Path)):
        directory = Path(paths)
        if not directory.is_dir():
            raise ProtocolConfigurationError(
                f"merge_checkpoints got {directory}, which is not a "
                "directory of shard checkpoints (pass the collector's "
                "checkpoint directory, or a sequence of shard-NN.npz paths)"
            )
        path_list = sorted(directory.glob("shard-*.npz"))
        if not path_list:
            found = sorted(entry.name for entry in directory.iterdir())
            raise ProtocolConfigurationError(
                f"no shard checkpoints (shard-NN.npz) in {directory}; "
                f"found: {found if found else 'an empty directory'}"
            )
    else:
        path_list = [Path(path) for path in paths]
    if not path_list:
        raise ProtocolConfigurationError(
            "merge_checkpoints needs at least one checkpoint path"
        )
    if expected_shards is not None and len(path_list) != expected_shards:
        names = sorted(path.name for path in path_list)
        where = path_list[0].parent
        raise ProtocolConfigurationError(
            f"expected {expected_shards} shard checkpoint(s) but found "
            f"{len(path_list)} in {where}: {names} — the checkpoint "
            "directory is partial (collector interrupted before every "
            "shard was written?)"
        )
    merged: Optional[AggregationSession] = None
    quarantined: List[str] = []
    for path in path_list:
        try:
            restored = AggregationSession.restore(path)
        except WireFormatError as error:
            if allow_partial:
                from ..resilience.integrity import quarantine_checkpoint

                moved, report = quarantine_checkpoint(
                    path, f"shard failed restore during merge: {error}"
                )
                _logger.error(
                    "shard checkpoint %s is corrupt (%s); quarantined to "
                    "%s (report: %s); merging the remaining shards",
                    path,
                    error,
                    moved,
                    report,
                )
                quarantined.append(path.name)
                continue
            parent = path.parent
            siblings = (
                sorted(entry.name for entry in parent.glob("*.npz"))
                if parent.is_dir()
                else []
            )
            raise WireFormatError(
                f"cannot merge shard checkpoint {path}: {error} "
                f"(checkpoint files present in {parent}: "
                f"{siblings if siblings else 'none'})"
            ) from error
        merged = restored if merged is None else merged.merge(restored)
    if merged is None:
        raise WireFormatError(
            f"every shard checkpoint was corrupt and quarantined "
            f"({quarantined}); nothing left to merge"
        )
    return merged
