"""Analytic bounds from the paper's theory sections."""

from .bounds import (
    BoundSummary,
    communication_bits,
    error_bound,
    error_exponent_factor,
    master_theorem_deviation_bound,
    table2_summary,
)

__all__ = [
    "communication_bits",
    "error_exponent_factor",
    "error_bound",
    "BoundSummary",
    "table2_summary",
    "master_theorem_deviation_bound",
]
