"""Analytic bounds from the paper's theory sections."""

from .bounds import (
    BoundSummary,
    communication_bits,
    error_bound,
    error_exponent_factor,
    frequency_confidence_half_width,
    frequency_oracle_variance,
    master_theorem_deviation_bound,
    normal_quantile,
    table2_summary,
)

__all__ = [
    "communication_bits",
    "error_exponent_factor",
    "error_bound",
    "BoundSummary",
    "table2_summary",
    "master_theorem_deviation_bound",
    "normal_quantile",
    "frequency_oracle_variance",
    "frequency_confidence_half_width",
]
