"""Theoretical communication and accuracy bounds (Table 2, Theorems 4.2–4.6).

The paper summarises each protocol by (a) the number of bits a user sends and
(b) the leading behaviour of the total-variation error of a reconstructed
k-way marginal, suppressing logarithmic factors and the common
``1 / (eps sqrt(N))`` term.  This module evaluates those expressions so that
experiments can be checked against theory and so Table 2 can be regenerated
programmatically, and provides the per-report variance formulas from the
proofs that back the sample-vs-split ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget

__all__ = [
    "communication_bits",
    "error_exponent_factor",
    "error_bound",
    "BoundSummary",
    "table2_summary",
    "master_theorem_deviation_bound",
    "coverage_inflation",
    "error_bound_with_loss",
]

_METHODS = ("InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT")


def _validate(d: int, k: int) -> None:
    if d < 1:
        raise ProtocolConfigurationError(f"dimension must be >= 1, got {d}")
    if not 1 <= k <= d:
        raise ProtocolConfigurationError(f"marginal width k={k} outside [1, {d}]")


def _coefficient_set_size(d: int, k: int) -> int:
    """``|T| = sum_{l=1..k} C(d, l)`` — the InpHT sampling-set size."""
    return sum(math.comb(d, level) for level in range(1, k + 1))


def communication_bits(method: str, d: int, k: int) -> int:
    """Bits per user sent by each method (the middle column of Table 2)."""
    _validate(d, k)
    if method == "InpRR":
        return 1 << d
    if method == "InpPS":
        return d
    if method == "InpHT":
        return d + 1
    if method == "MargRR":
        return d + (1 << k)
    if method == "MargPS":
        return d + k
    if method == "MargHT":
        return d + k + 1
    raise ProtocolConfigurationError(
        f"unknown method {method!r}; expected one of {_METHODS}"
    )


def error_exponent_factor(method: str, d: int, k: int) -> float:
    """The d/k-dependent factor of the error column of Table 2.

    The full bound is this factor times ``1 / (eps sqrt(N))`` (up to
    logarithmic terms); comparing factors across methods predicts their
    relative accuracy.
    """
    _validate(d, k)
    if method == "InpRR":
        return 2.0 ** (k / 2.0) * 2.0**d
    if method == "InpPS":
        return 2.0 ** (k / 2.0) * 2.0**d
    if method == "InpHT":
        # 2^{k/2} sqrt(|T|); the paper abbreviates sqrt(|T|) as d^{k/2}.
        return 2.0 ** (k / 2.0) * math.sqrt(_coefficient_set_size(d, k))
    if method == "MargRR":
        return 2.0**k * d ** (k / 2.0)
    if method == "MargPS":
        return 2.0 ** (1.5 * k) * d ** (k / 2.0)
    if method == "MargHT":
        return 2.0 ** (1.5 * k) * d ** (k / 2.0)
    raise ProtocolConfigurationError(
        f"unknown method {method!r}; expected one of {_METHODS}"
    )


def error_bound(
    method: str, d: int, k: int, epsilon: float, population: int
) -> float:
    """The (order-of-magnitude) total-variation error bound of a method."""
    if epsilon <= 0:
        raise ProtocolConfigurationError(f"epsilon must be positive, got {epsilon}")
    if population < 1:
        raise ProtocolConfigurationError(
            f"population must be >= 1, got {population}"
        )
    return error_exponent_factor(method, d, k) / (epsilon * math.sqrt(population))


@dataclass(frozen=True)
class BoundSummary:
    """One row of Table 2, evaluated at concrete ``(d, k)``."""

    method: str
    communication_bits: int
    error_factor: float

    def error_at(self, epsilon: float, population: int) -> float:
        if epsilon <= 0 or population < 1:
            raise ProtocolConfigurationError(
                "epsilon must be positive and population >= 1"
            )
        return self.error_factor / (epsilon * math.sqrt(population))


def table2_summary(d: int, k: int) -> List[BoundSummary]:
    """Evaluate every row of Table 2 at concrete ``(d, k)``."""
    return [
        BoundSummary(
            method=method,
            communication_bits=communication_bits(method, d, k),
            error_factor=error_exponent_factor(method, d, k),
        )
        for method in _METHODS
    ]


def master_theorem_deviation_bound(
    budget: PrivacyBudget,
    sampling_probability: float,
    population: int,
    deviation: float,
) -> float:
    """Theorem 4.2's Bernstein-style tail bound on the mean estimate error.

    Returns the probability bound
    ``2 exp(-N c^2 p_s (2 p_r - 1) / (2 p_r (2 (1 - p_r)/(2 p_r - 1) + c/3)))``
    for the sample-and-randomize estimator with sampling probability ``p_s``
    and randomized-response probability ``p_r`` derived from the budget.
    """
    if not 0 < sampling_probability <= 1:
        raise ProtocolConfigurationError(
            f"sampling probability must be in (0, 1], got {sampling_probability}"
        )
    if population < 1:
        raise ProtocolConfigurationError(f"population must be >= 1, got {population}")
    if deviation <= 0:
        raise ProtocolConfigurationError(f"deviation must be positive, got {deviation}")
    p_r = budget.rr_keep_probability()
    numerator = population * deviation**2 * sampling_probability * (2 * p_r - 1)
    denominator = 2 * p_r * (2 * (1 - p_r) / (2 * p_r - 1) + deviation / 3)
    return min(1.0, 2.0 * math.exp(-numerator / denominator))


def coverage_inflation(expected: int, received: int) -> float:
    """Error-bound multiplier when only ``received`` of ``expected`` reports
    reach the aggregator.

    Every bound in Table 2 scales as ``1 / sqrt(N)``, so finalizing over a
    smaller population inflates it by ``sqrt(expected / received)``.  Used
    by the resilience layer's :class:`~repro.resilience.CoverageReport` to
    price report loss instead of ignoring it.  Returns ``1.0`` for full
    coverage and ``inf`` when nothing arrived.
    """
    if expected < 0:
        raise ProtocolConfigurationError(
            f"expected report count must be >= 0, got {expected}"
        )
    if received < 0:
        raise ProtocolConfigurationError(
            f"received report count must be >= 0, got {received}"
        )
    if expected == 0 or received >= expected:
        return 1.0
    if received == 0:
        return math.inf
    return math.sqrt(expected / received)


def error_bound_with_loss(
    method: str,
    d: int,
    k: int,
    epsilon: float,
    expected: int,
    received: int,
) -> float:
    """Table 2's error bound evaluated at the population that *arrived*.

    Equivalent to ``error_bound(method, d, k, epsilon, expected)`` times
    :func:`coverage_inflation` — the bound a degraded-mode finalize should
    quote next to its estimates.
    """
    if received < 1:
        raise ProtocolConfigurationError(
            f"received report count must be >= 1, got {received}"
        )
    if received > expected:
        raise ProtocolConfigurationError(
            f"received ({received}) cannot exceed expected ({expected})"
        )
    return error_bound(method, d, k, epsilon, received)
