"""Theoretical communication and accuracy bounds (Table 2, Theorems 4.2–4.6).

The paper summarises each protocol by (a) the number of bits a user sends and
(b) the leading behaviour of the total-variation error of a reconstructed
k-way marginal, suppressing logarithmic factors and the common
``1 / (eps sqrt(N))`` term.  This module evaluates those expressions so that
experiments can be checked against theory and so Table 2 can be regenerated
programmatically, and provides the per-report variance formulas from the
proofs that back the sample-vs-split ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget

__all__ = [
    "communication_bits",
    "error_exponent_factor",
    "error_bound",
    "BoundSummary",
    "table2_summary",
    "master_theorem_deviation_bound",
    "coverage_inflation",
    "error_bound_with_loss",
    "normal_quantile",
    "frequency_oracle_variance",
    "frequency_confidence_half_width",
]

_METHODS = ("InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT")

#: Frequency oracles with a per-cell variance formula (Appendix B.2 methods
#: plus the sampled-Hadamard protocol run as an oracle over a prefix domain).
_ORACLE_METHODS = ("InpOLH", "InpHT", "InpHTCMS")


def _validate(d: int, k: int) -> None:
    if d < 1:
        raise ProtocolConfigurationError(f"dimension must be >= 1, got {d}")
    if not 1 <= k <= d:
        raise ProtocolConfigurationError(f"marginal width k={k} outside [1, {d}]")


def _coefficient_set_size(d: int, k: int) -> int:
    """``|T| = sum_{l=1..k} C(d, l)`` — the InpHT sampling-set size."""
    return sum(math.comb(d, level) for level in range(1, k + 1))


def communication_bits(method: str, d: int, k: int) -> int:
    """Bits per user sent by each method (the middle column of Table 2)."""
    _validate(d, k)
    if method == "InpRR":
        return 1 << d
    if method == "InpPS":
        return d
    if method == "InpHT":
        return d + 1
    if method == "MargRR":
        return d + (1 << k)
    if method == "MargPS":
        return d + k
    if method == "MargHT":
        return d + k + 1
    raise ProtocolConfigurationError(
        f"unknown method {method!r}; expected one of {_METHODS}"
    )


def error_exponent_factor(method: str, d: int, k: int) -> float:
    """The d/k-dependent factor of the error column of Table 2.

    The full bound is this factor times ``1 / (eps sqrt(N))`` (up to
    logarithmic terms); comparing factors across methods predicts their
    relative accuracy.
    """
    _validate(d, k)
    if method == "InpRR":
        return 2.0 ** (k / 2.0) * 2.0**d
    if method == "InpPS":
        return 2.0 ** (k / 2.0) * 2.0**d
    if method == "InpHT":
        # 2^{k/2} sqrt(|T|); the paper abbreviates sqrt(|T|) as d^{k/2}.
        return 2.0 ** (k / 2.0) * math.sqrt(_coefficient_set_size(d, k))
    if method == "MargRR":
        return 2.0**k * d ** (k / 2.0)
    if method == "MargPS":
        return 2.0 ** (1.5 * k) * d ** (k / 2.0)
    if method == "MargHT":
        return 2.0 ** (1.5 * k) * d ** (k / 2.0)
    raise ProtocolConfigurationError(
        f"unknown method {method!r}; expected one of {_METHODS}"
    )


def error_bound(
    method: str, d: int, k: int, epsilon: float, population: int
) -> float:
    """The (order-of-magnitude) total-variation error bound of a method."""
    if epsilon <= 0:
        raise ProtocolConfigurationError(f"epsilon must be positive, got {epsilon}")
    if population < 1:
        raise ProtocolConfigurationError(
            f"population must be >= 1, got {population}"
        )
    return error_exponent_factor(method, d, k) / (epsilon * math.sqrt(population))


@dataclass(frozen=True)
class BoundSummary:
    """One row of Table 2, evaluated at concrete ``(d, k)``."""

    method: str
    communication_bits: int
    error_factor: float

    def error_at(self, epsilon: float, population: int) -> float:
        if epsilon <= 0 or population < 1:
            raise ProtocolConfigurationError(
                "epsilon must be positive and population >= 1"
            )
        return self.error_factor / (epsilon * math.sqrt(population))


def table2_summary(d: int, k: int) -> List[BoundSummary]:
    """Evaluate every row of Table 2 at concrete ``(d, k)``."""
    return [
        BoundSummary(
            method=method,
            communication_bits=communication_bits(method, d, k),
            error_factor=error_exponent_factor(method, d, k),
        )
        for method in _METHODS
    ]


def master_theorem_deviation_bound(
    budget: PrivacyBudget,
    sampling_probability: float,
    population: int,
    deviation: float,
) -> float:
    """Theorem 4.2's Bernstein-style tail bound on the mean estimate error.

    Returns the probability bound
    ``2 exp(-N c^2 p_s (2 p_r - 1) / (2 p_r (2 (1 - p_r)/(2 p_r - 1) + c/3)))``
    for the sample-and-randomize estimator with sampling probability ``p_s``
    and randomized-response probability ``p_r`` derived from the budget.
    """
    if not 0 < sampling_probability <= 1:
        raise ProtocolConfigurationError(
            f"sampling probability must be in (0, 1], got {sampling_probability}"
        )
    if population < 1:
        raise ProtocolConfigurationError(f"population must be >= 1, got {population}")
    if deviation <= 0:
        raise ProtocolConfigurationError(f"deviation must be positive, got {deviation}")
    p_r = budget.rr_keep_probability()
    numerator = population * deviation**2 * sampling_probability * (2 * p_r - 1)
    denominator = 2 * p_r * (2 * (1 - p_r) / (2 * p_r - 1) + deviation / 3)
    return min(1.0, 2.0 * math.exp(-numerator / denominator))


def coverage_inflation(expected: int, received: int) -> float:
    """Error-bound multiplier when only ``received`` of ``expected`` reports
    reach the aggregator.

    Every bound in Table 2 scales as ``1 / sqrt(N)``, so finalizing over a
    smaller population inflates it by ``sqrt(expected / received)``.  Used
    by the resilience layer's :class:`~repro.resilience.CoverageReport` to
    price report loss instead of ignoring it.  Returns ``1.0`` for full
    coverage and ``inf`` when nothing arrived.
    """
    if expected < 0:
        raise ProtocolConfigurationError(
            f"expected report count must be >= 0, got {expected}"
        )
    if received < 0:
        raise ProtocolConfigurationError(
            f"received report count must be >= 0, got {received}"
        )
    if expected == 0 or received >= expected:
        return 1.0
    if received == 0:
        return math.inf
    return math.sqrt(expected / received)


def normal_quantile(probability: float) -> float:
    """The standard-normal quantile ``Phi^{-1}(probability)``.

    Evaluated by bisection on ``math.erf`` so the confidence-interval
    helpers need no SciPy at runtime; 200 halvings of [-40, 40] pin the
    quantile far below float64 resolution.
    """
    if not 0.0 < probability < 1.0:
        raise ProtocolConfigurationError(
            f"quantile probability must lie in (0, 1), got {probability}"
        )
    low, high = -40.0, 40.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < probability:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def frequency_oracle_variance(
    oracle: str,
    epsilon: float,
    population: int,
    domain_size: int,
    num_hashes: int = 5,
    width: int = 256,
) -> float:
    """Leading-order variance of one cell-frequency estimate from an oracle.

    The heavy-hitter pruning thresholds and confidence intervals are driven
    by how noisy a single frequency estimate is at a level with
    ``population`` reporting users over ``domain_size`` prefixes:

    * ``"InpOLH"`` — Wang et al.'s OLH bound ``4 e^eps / ((e^eps - 1)^2 N)``
      (worst case over the true frequency, at the optimal bucket count);
    * ``"InpHT"`` — the full prefix distribution is reconstructed from all
      ``m - 1`` nonzero Hadamard coefficients, each sampled by ``N/(m-1)``
      users and attenuated by ``a = (e^eps - 1)/(e^eps + 1)``, giving a
      per-cell variance ``((m-1)/m)^2 / (a^2 N)``;
    * ``"InpHTCMS"`` — Apple's HCMS constant
      ``c = (e^{eps/2} + 1)/(e^{eps/2} - 1)`` with the sketch-width
      correction ``w/(w-1)``: ``c^2 w / ((w-1) N)``.

    All three suppress the ``O(1/N)``-and-smaller terms that depend on the
    (unknown) true frequency, matching the convention of Table 2.
    """
    if oracle not in _ORACLE_METHODS:
        raise ProtocolConfigurationError(
            f"unknown frequency oracle {oracle!r}; expected one of "
            f"{_ORACLE_METHODS}"
        )
    if epsilon <= 0:
        raise ProtocolConfigurationError(f"epsilon must be positive, got {epsilon}")
    if population < 1:
        raise ProtocolConfigurationError(
            f"population must be >= 1, got {population}"
        )
    if domain_size < 2:
        raise ProtocolConfigurationError(
            f"domain size must be >= 2, got {domain_size}"
        )
    if oracle == "InpOLH":
        growth = math.exp(epsilon)
        return 4.0 * growth / ((growth - 1.0) ** 2 * population)
    if oracle == "InpHT":
        growth = math.exp(epsilon)
        attenuation = (growth - 1.0) / (growth + 1.0)
        shrink = (domain_size - 1.0) / domain_size
        return shrink**2 / (attenuation**2 * population)
    if num_hashes < 1:
        raise ProtocolConfigurationError(
            f"sketch hash count must be >= 1, got {num_hashes}"
        )
    if width < 2:
        raise ProtocolConfigurationError(
            f"sketch width must be >= 2, got {width}"
        )
    constant = (math.exp(epsilon / 2.0) + 1.0) / (math.exp(epsilon / 2.0) - 1.0)
    return constant**2 * width / ((width - 1.0) * population)


def frequency_confidence_half_width(
    oracle: str,
    epsilon: float,
    population: int,
    domain_size: int,
    confidence: float = 0.95,
    num_hashes: int = 5,
    width: int = 256,
) -> float:
    """Half-width of a two-sided normal CI on one cell-frequency estimate.

    ``z_{(1+confidence)/2} * sqrt(variance)`` with the variance from
    :func:`frequency_oracle_variance`.  A level that received no reports
    pins nothing down, so ``population == 0`` returns ``inf`` (the
    heavy-hitter pruning then falls back to its keep-the-top rule instead
    of trusting a zero distribution).
    """
    if not 0.0 < confidence < 1.0:
        raise ProtocolConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if population == 0:
        return math.inf
    quantile = normal_quantile(0.5 * (1.0 + confidence))
    return quantile * math.sqrt(
        frequency_oracle_variance(
            oracle,
            epsilon,
            population,
            domain_size,
            num_hashes=num_hashes,
            width=width,
        )
    )


def error_bound_with_loss(
    method: str,
    d: int,
    k: int,
    epsilon: float,
    expected: int,
    received: int,
) -> float:
    """Table 2's error bound evaluated at the population that *arrived*.

    Equivalent to ``error_bound(method, d, k, epsilon, expected)`` times
    :func:`coverage_inflation` — the bound a degraded-mode finalize should
    quote next to its estimates.
    """
    if received < 1:
        raise ProtocolConfigurationError(
            f"received report count must be >= 1, got {received}"
        )
    if received > expected:
        raise ProtocolConfigurationError(
            f"received ({received}) cannot exceed expected ({expected})"
        )
    return error_bound(method, d, k, epsilon, received)
