"""Serialisation of experiment results.

Sweep results (the data behind the paper's figures) can be written to JSON
(full fidelity, including the configuration and per-repetition errors) or CSV
(one row per grid point, convenient for external plotting), and JSON results
can be loaded back into :class:`~repro.experiments.harness.SweepResult`
objects for further analysis.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from .core.exceptions import ReproError
from .experiments.config import SweepConfig
from .experiments.harness import SweepPoint, SweepResult
from .service.spec import ProtocolSpec

__all__ = [
    "save_sweep_json",
    "load_sweep_json",
    "save_sweep_csv",
    "save_protocol_spec",
    "load_protocol_spec",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_sweep_json(result: SweepResult, path: PathLike) -> Path:
    """Write a sweep result (configuration + every grid point) to JSON."""
    path = Path(path)
    config = result.config
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "protocols": list(config.protocols),
            "dataset": config.dataset,
            "population_sizes": list(config.population_sizes),
            "dimensions": list(config.dimensions),
            "widths": list(config.widths),
            "epsilons": list(config.epsilons),
            "repetitions": config.repetitions,
            "seed": config.seed,
            "protocol_options": config.protocol_options,
        },
        "points": [
            {
                "protocol": point.protocol,
                "population": point.population,
                "dimension": point.dimension,
                "width": point.width,
                "epsilon": point.epsilon,
                "mean_error": point.mean_error,
                "std_error": point.std_error,
                "errors": list(point.errors),
            }
            for point in result.points
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_sweep_json(path: PathLike) -> SweepResult:
    """Load a sweep result previously written by :func:`save_sweep_json`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read sweep result from {path}: {error}") from error

    if payload.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported sweep-result format {payload.get('format_version')!r} "
            f"in {path}; expected {_FORMAT_VERSION}"
        )
    raw_config = payload["config"]
    config = SweepConfig(
        protocols=tuple(raw_config["protocols"]),
        dataset=raw_config["dataset"],
        population_sizes=tuple(raw_config["population_sizes"]),
        dimensions=tuple(raw_config["dimensions"]),
        widths=tuple(raw_config["widths"]),
        epsilons=tuple(raw_config["epsilons"]),
        repetitions=raw_config["repetitions"],
        seed=raw_config["seed"],
        protocol_options=raw_config.get("protocol_options", {}),
    )
    points = tuple(
        SweepPoint(
            protocol=raw["protocol"],
            population=raw["population"],
            dimension=raw["dimension"],
            width=raw["width"],
            epsilon=raw["epsilon"],
            mean_error=raw["mean_error"],
            std_error=raw["std_error"],
            errors=tuple(raw["errors"]),
        )
        for raw in payload["points"]
    )
    return SweepResult(config=config, points=points)


def save_protocol_spec(spec: ProtocolSpec, path: PathLike) -> Path:
    """Write a protocol spec to a JSON file (the out-of-band contract)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(spec.to_json(indent=2) + "\n")
    return path


def load_protocol_spec(path: PathLike) -> ProtocolSpec:
    """Load a protocol spec previously written by :func:`save_protocol_spec`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ReproError(
            f"cannot read protocol spec from {path}: {error}"
        ) from error
    return ProtocolSpec.from_json(text)


def save_sweep_csv(result: SweepResult, path: PathLike) -> Path:
    """Write one CSV row per grid point (protocol, N, d, k, eps, mean, std)."""
    path = Path(path)
    rows = result.as_rows()
    if not rows:
        raise ReproError("cannot write an empty sweep result to CSV")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path
