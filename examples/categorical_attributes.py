"""Marginals over categorical (non-binary) attributes via binary encoding.

Section 6.3 of the paper extends the binary protocols to categorical data by
encoding each attribute with ceil(log2 r) bits (Corollary 6.1).  This example
builds a small categorical survey dataset (device type, region, plan tier,
heavy-user flag), encodes it, releases marginals with InpHT, and folds the
reconstructed tables back into categorical form.

Run with:  python examples/categorical_attributes.py
"""

from __future__ import annotations

import numpy as np

from repro import InpHT, PrivacyBudget
from repro.datasets import CategoricalDomain, encode_compact


def make_survey_records(n: int, rng: np.random.Generator) -> np.ndarray:
    """Synthetic survey: device (4), region (4), plan (3), heavy user (2)."""
    device = rng.choice(4, size=n, p=[0.45, 0.30, 0.15, 0.10])
    region = rng.choice(4, size=n, p=[0.40, 0.25, 0.20, 0.15])
    # Plan tier correlates with device (premium devices -> premium plans).
    plan_probabilities = np.array(
        [[0.6, 0.3, 0.1], [0.4, 0.4, 0.2], [0.2, 0.4, 0.4], [0.1, 0.3, 0.6]]
    )
    plan = np.array([rng.choice(3, p=plan_probabilities[d]) for d in device])
    heavy = (rng.random(n) < (0.2 + 0.2 * plan)).astype(np.int64)
    return np.stack([device, region, plan, heavy], axis=1)


def main() -> None:
    rng = np.random.default_rng(99)
    domain = CategoricalDomain(
        ["device", "region", "plan", "heavy_user"], [4, 4, 3, 2]
    )
    records = make_survey_records(200_000, rng)
    encoded = encode_compact(records, domain)
    binary = encoded.binary_dataset
    print(
        f"categorical domain {domain.cardinalities} encoded into "
        f"{binary.dimension} binary attributes"
    )

    # Workload: 2-way categorical marginals need up to 2+2=4 encoded bits.
    protocol = InpHT(PrivacyBudget(1.1), max_width=4)
    estimator = protocol.run(binary, rng=rng)

    for pair in (["device", "plan"], ["plan", "heavy_user"]):
        mask = encoded.binary_mask_for(pair)
        exact = encoded.categorical_marginal(pair, binary.marginal(mask).values)
        private = encoded.categorical_marginal(pair, estimator.query(mask).values)
        error = 0.5 * float(np.abs(exact - private).sum())
        print(f"\n2-way categorical marginal {pair} (TV error {error:.4f})")
        print("exact:")
        print(np.round(exact, 4))
        print("private:")
        print(np.round(private, 4))


if __name__ == "__main__":
    main()
