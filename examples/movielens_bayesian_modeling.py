"""Fitting a dependency-tree Bayesian model from LDP reports (Section 6.2).

A streaming service wants a probabilistic model of which movie genres its
users watch together (for recommendations and demand prediction) without
collecting raw viewing histories.  Each user submits one LDP report; the
analyst fits a Chow–Liu dependency tree and its conditional probability
tables entirely from the released 1- and 2-way marginals, then uses the model
to score and sample genre-preference profiles.

Run with:  python examples/movielens_bayesian_modeling.py
"""

from __future__ import annotations

import numpy as np

from repro import InpHT, PrivacyBudget, fit_chow_liu_tree, fit_tree_model, make_movielens_dataset
from repro.analysis import pairwise_mutual_information


def main() -> None:
    rng = np.random.default_rng(42)
    data = make_movielens_dataset(200_000, d=10, rng=rng)
    budget = PrivacyBudget(1.1)

    # Non-private reference model.
    exact_tree = fit_chow_liu_tree(data)
    true_weights = pairwise_mutual_information(data)
    print("non-private Chow-Liu tree edges:")
    for edge in exact_tree.edges:
        print(f"  {edge[0]:12s} -- {edge[1]}")
    print(f"total mutual information: {exact_tree.total_weight_under(true_weights):.4f}")

    # Private model from InpHT marginals.
    protocol = InpHT(budget, max_width=2)
    estimator = protocol.run(data, rng=rng)
    private_tree = fit_chow_liu_tree(estimator)
    print("\nprivate Chow-Liu tree edges (from InpHT marginals):")
    for edge in private_tree.edges:
        print(f"  {edge[0]:12s} -- {edge[1]}")
    captured = private_tree.total_weight_under(true_weights)
    print(
        f"true mutual information captured: {captured:.4f} "
        f"({captured / exact_tree.total_weight_under(true_weights):.0%} of optimal)"
    )

    # Derive CPTs from the private marginals and use the generative model.
    model = fit_tree_model(estimator, tree=private_tree)
    profile = {name: 0 for name in data.attribute_names}
    profile.update({"Drama": 1, "Comedy": 1})
    print(f"\nP[drama+comedy-only profile] under the private model: "
          f"{model.probability(profile):.6f}")

    synthetic = model.sample(5, rng=rng)
    print("five synthetic users sampled from the private model:")
    for row in synthetic.records:
        active = [name for name, bit in zip(data.attribute_names, row) if bit]
        print(f"  {active or ['(no genres)']}")


if __name__ == "__main__":
    main()
