"""Association testing on privately released taxi marginals (paper Section 6.1).

A taxi service provider wants to know which trip attributes are genuinely
associated (night pickups with night drop-offs, card payment with generous
tips, ...) without ever seeing raw trip records.  Each rider submits one
LDP report; the analyst reconstructs 2-way marginals and runs chi-squared
independence tests on them.

Run with:  python examples/taxi_association_testing.py
"""

from __future__ import annotations

import numpy as np

from repro import InpHT, MargPS, PrivacyBudget, compare_association_tests, make_taxi_dataset
from repro.datasets import DEPENDENT_PAIRS, INDEPENDENT_PAIRS


def main() -> None:
    rng = np.random.default_rng(2018)
    data = make_taxi_dataset(262_144, rng=rng)
    budget = PrivacyBudget(1.1)
    pairs = DEPENDENT_PAIRS + INDEPENDENT_PAIRS

    for protocol_class in (InpHT, MargPS):
        protocol = protocol_class(budget, max_width=2)
        estimator = protocol.run(data, rng=rng)
        comparisons = compare_association_tests(data, estimator, pairs)

        print(f"\n=== {protocol.name} (eps={budget.epsilon}) ===")
        print(f"{'pair':25s} {'chi2 exact':>12s} {'chi2 private':>13s}  verdicts")
        for comparison in comparisons:
            pair = "/".join(comparison.attributes)
            exact = comparison.exact
            private = comparison.private
            verdict = (
                f"exact={'dep' if exact.dependent else 'ind'} "
                f"private={'dep' if private.dependent else 'ind'}"
                + ("" if comparison.agrees else "  <-- disagreement")
            )
            print(
                f"{pair:25s} {exact.statistic:12.1f} {private.statistic:13.1f}  {verdict}"
            )
        agreement = sum(c.agrees for c in comparisons) / len(comparisons)
        print(f"agreement with the non-private test: {agreement:.0%}")


if __name__ == "__main__":
    main()
