"""Categorical marginals via the Efron–Stein decomposition (InpES).

Section 6.3 of the paper conjectures that an orthogonal decomposition
generalising the Hadamard transform — the Efron–Stein decomposition — yields
one of the best solutions for low-order marginals over categorical data.
This example runs the `InpES` protocol (this library's realisation of that
conjecture) on a synthetic categorical survey and compares it against the
compact-binary-encoding route (Corollary 6.1) on the same population.

Run with:  python examples/efron_stein_categorical.py
"""

from __future__ import annotations

import numpy as np

from repro import InpES, InpHT, PrivacyBudget
from repro.datasets import CategoricalDomain, encode_compact


def make_records(n: int, rng: np.random.Generator) -> np.ndarray:
    """Device (4 values), plan tier (3), region (4), heavy-user flag (2)."""
    device = rng.choice(4, size=n, p=[0.45, 0.30, 0.15, 0.10])
    plan_probabilities = np.array(
        [[0.6, 0.3, 0.1], [0.4, 0.4, 0.2], [0.2, 0.4, 0.4], [0.1, 0.3, 0.6]]
    )
    plan = np.array([rng.choice(3, p=plan_probabilities[d]) for d in device])
    region = rng.choice(4, size=n)
    heavy = (rng.random(n) < 0.15 + 0.2 * plan).astype(np.int64)
    return np.stack([device, plan, region, heavy], axis=1)


def exact_marginal(records: np.ndarray, columns, cards) -> np.ndarray:
    counts = np.zeros(cards)
    for row in records:
        counts[tuple(row[c] for c in columns)] += 1
    return counts / records.shape[0]


def main() -> None:
    rng = np.random.default_rng(11)
    domain = CategoricalDomain(["device", "plan", "region", "heavy_user"], [4, 3, 4, 2])
    records = make_records(200_000, rng)
    budget = PrivacyBudget(1.1)

    # Route 1: native categorical release through the Efron-Stein basis.
    es_estimator = InpES(budget, max_width=2).run(records, domain, rng=rng)

    # Route 2: compact binary encoding + the paper's InpHT (Corollary 6.1).
    encoded = encode_compact(records, domain)
    widths = domain.bits_per_attribute()
    k2 = max(
        widths[i] + widths[j]
        for i in range(domain.dimension)
        for j in range(i + 1, domain.dimension)
    )
    ht_estimator = InpHT(budget, max_width=k2).run(encoded.binary_dataset, rng=rng)

    print(f"{'marginal':22s} {'InpES error':>12s} {'binary+InpHT error':>19s}")
    pairs = [("device", "plan"), ("plan", "heavy_user"), ("device", "region")]
    for first, second in pairs:
        columns = (domain.index_of(first), domain.index_of(second))
        cards = tuple(domain.cardinalities[c] for c in columns)
        truth = exact_marginal(records, columns, cards)

        es_table = es_estimator.query([first, second])
        es_error = 0.5 * np.abs(es_table - truth).sum()

        mask = encoded.binary_mask_for([first, second])
        ht_values = ht_estimator.query(mask).values
        ht_table = encoded.categorical_marginal([first, second], ht_values)
        ht_error = 0.5 * np.abs(ht_table - truth).sum()

        print(f"{first}/{second:<15s} {es_error:12.4f} {ht_error:19.4f}")

    print("\n(device, plan) joint distribution, InpES estimate:")
    print(np.round(es_estimator.query(["device", "plan"]), 4))


if __name__ == "__main__":
    main()
