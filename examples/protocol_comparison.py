"""Compare all nine protocols on one dataset (the paper's Figure 4 in miniature).

Runs every registered protocol at the same privacy level over the same
population and prints the mean total-variation error over all 1- and 2-way
marginals together with the per-user communication cost — a quick way to see
the paper's headline result (Hadamard-based input perturbation wins) on your
own parameters.

Run with:  python examples/protocol_comparison.py [N] [d] [epsilon]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import PrivacyBudget, available_protocols, make_movielens_dataset, make_protocol
from repro.experiments import mean_total_variation


def main(population: int = 65_536, dimension: int = 8, epsilon: float = float(np.log(3))) -> None:
    rng = np.random.default_rng(123)
    data = make_movielens_dataset(population, d=dimension, rng=rng)
    budget = PrivacyBudget(epsilon)

    print(
        f"N={population}, d={dimension}, eps={epsilon:.2f}, "
        "workload = all 1- and 2-way marginals\n"
    )
    print(f"{'protocol':10s} {'mean TV error':>14s} {'bits/user':>10s}")
    results = []
    for name in available_protocols():
        protocol = make_protocol(name, budget, max_width=2)
        estimator = protocol.run(data, rng=rng)
        error = mean_total_variation(data, estimator, widths=[1, 2])
        results.append((error, name, protocol.communication_bits(dimension)))
    for error, name, bits in sorted(results):
        print(f"{name:10s} {error:14.4f} {bits:10d}")


if __name__ == "__main__":
    arguments = [int(sys.argv[1])] if len(sys.argv) > 1 else []
    if len(sys.argv) > 2:
        arguments.append(int(sys.argv[2]))
    if len(sys.argv) > 3:
        arguments.append(float(sys.argv[3]))
    main(*arguments)
