"""Quickstart: discover heavy hitters under epsilon-LDP without a candidate list.

Marginal release answers "how often does THIS itemset occur?" — but it
needs you to name the itemset.  Heavy-hitter discovery answers the prior
question: WHICH cells of the 2^d domain are frequent at all?  The ``HH``
protocol partitions users across a prefix tree (each user reports once,
about one prefix level, so the whole walk is eps-LDP with no composition),
runs a frequency oracle per level, prunes below-threshold prefixes, and
ranks the surviving full-domain cells with confidence intervals.

Runs discovery two ways — the in-process streaming pipeline and the
service-shaped spec/wire/session path a deployed collector would use —
and scores both against the exact (non-private) top-k.

Run with:  python examples/heavyhitters.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationSession,
    HeavyHitters,
    PrivacyBudget,
    exact_top_k,
    precision_recall,
    skewed_dataset,
)
from repro.core.rng import spawn_rngs


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. The population: 30K users over 8 binary attributes with a
    #    zipf-style skew, so a handful of cells dominate.
    data = skewed_dataset(30_000, 8, rng=rng)
    truth = exact_top_k(data, 6)
    print(f"dataset: {data.size} users over 2^{data.dimension} cells")
    print(f"exact top-6 cells: {truth}")

    # 2. The protocol: fanout=4 splits the 8 prefix bits into 2 levels,
    #    so each level's inner oracle (InpOLH here) sees ~15K users.
    protocol = HeavyHitters(
        PrivacyBudget(3.0), max_width=2, oracle="InpOLH", fanout=4, top_k=6
    )
    print(
        f"protocol: {protocol.name}, eps={protocol.epsilon:.2f}, "
        f"levels at bits {protocol.level_plan(data.dimension)}, "
        f"{protocol.communication_bits(data.dimension)} bits per user"
    )

    # 3a. In-process collection: one pass over the records; each user is
    #     assigned a level and encodes one oracle report for it.
    estimator = protocol.run_streaming(data, rng, batch_size=5_000)
    result = estimator.discover(confidence=0.95)
    precision, recall = precision_recall(result.indices, truth)
    print(
        f"\ndiscovered {len(result.hitters)} hitters "
        f"(precision {precision:.2f}, recall {recall:.2f}); "
        f"per-level survivors {result.survivors_per_level} "
        f"of {result.candidates_per_level} candidates"
    )
    for rank, hitter in enumerate(result.hitters, start=1):
        marker = "*" if hitter.index in truth else " "
        items = ",".join(hitter.attributes) or "(empty set)"
        print(
            f" {marker} {rank}. cell {hitter.index:3d}  "
            f"freq {hitter.frequency:.4f} +/- {hitter.half_width:.4f}  "
            f"[{items}]"
        )

    # 3b. The same discovery, service-shaped: the HH spec rides the same
    #     wire/session machinery as every marginal protocol, so frames can
    #     arrive over sockets, checkpoint, and merge — and finalize to a
    #     bit-for-bit identical DiscoveryResult.
    rng = np.random.default_rng(7)
    data = skewed_dataset(30_000, 8, rng=rng)  # same records, same rng chain
    spec = protocol.spec()
    client = spec.build()
    session = AggregationSession(spec, data.domain)
    # run_streaming spawns one child generator per batch; mirroring that
    # discipline here is what makes the two paths bit-for-bit comparable.
    batch_rngs = spawn_rngs(rng, data.num_batches(5_000))
    for batch, batch_rng in zip(data.iter_batches(5_000), batch_rngs):
        session.submit(client.encode_batch(batch, rng=batch_rng).to_bytes())
    served = session.snapshot().discover(confidence=0.95)
    print(
        f"\nservice path: {session.num_reports} reports over the wire, "
        f"discovery identical to 3a: {served.to_dict() == result.to_dict()}"
    )

    # 4. The itemset reading: a discovered cell IS a frequent itemset (the
    #    attributes set to 1), so association-style questions come free.
    itemsets = estimator.frequent_itemsets(min_frequency=0.05)
    print(f"\nitemsets with frequency >= 0.05: {len(itemsets)}")
    for names, frequency in itemsets[:5]:
        print(f"   {frequency:.4f}  {set(names) or '{}'}")


if __name__ == "__main__":
    main()
