"""Quickstart: release 2-way marginals of taxi-like data under epsilon-LDP.

Runs the paper's preferred protocol (InpHT) over a synthetic NYC-taxi-style
population two ways — the in-process streaming pipeline and the
service-shaped spec/wire/session path a deployed collector would use —
reconstructs a couple of marginals, and compares them against the exact
(non-private) tables.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregationSession, InpHT, PrivacyBudget, make_taxi_dataset


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. The population: 100K synthetic taxi trips over 8 binary attributes.
    data = make_taxi_dataset(100_000, rng=rng)
    print(f"dataset: {data.size} users, attributes: {data.attribute_names}")

    # 2. The protocol: each user sends d+1 bits satisfying eps-LDP (eps = ln 3).
    protocol = InpHT(PrivacyBudget(np.log(3)), max_width=2)
    print(
        f"protocol: {protocol.name}, eps={protocol.epsilon:.2f}, "
        f"{protocol.communication_bits(data.dimension)} bits per user"
    )

    # 3a. Simulate collection with the streaming pipeline: clients encode
    #     record batches, two aggregator shards fold the report batches into
    #     mergeable accumulators, and the merged state finalises into the
    #     estimator.  (protocol.run(data, rng=rng) is the one-shot shorthand,
    #     and run_streaming(...) drives this loop for you.)
    shards = [protocol.accumulator(data.domain) for _ in range(2)]
    for position, batch in enumerate(data.iter_batches(25_000)):
        reports = protocol.encode_batch(batch, rng=rng)   # client side
        shards[position % len(shards)].update(reports)    # aggregator side
    merged = shards[0].merge(shards[1])
    print(
        f"aggregated {merged.num_reports} reports across {len(shards)} shards"
    )
    estimator = merged.finalize()

    # 3b. The same collection, service-shaped: client and server agree on a
    #     JSON-round-trippable ProtocolSpec out-of-band, reports travel as
    #     validated byte frames, and the server holds a long-lived session
    #     that can be queried mid-stream (snapshot) and checkpointed to disk
    #     (session.checkpoint(path) / AggregationSession.restore(path)).
    spec = protocol.spec()
    print(f"spec (the client/server contract): {spec.to_json()}")
    client = spec.build()  # the clients' identically configured protocol
    session = AggregationSession(spec, data.domain)
    for batch in data.iter_batches(25_000):
        frame = client.encode_batch(batch, rng=rng).to_bytes()  # client side
        session.submit(frame)                                   # server side
    mid_stream = session.snapshot()   # non-destructive: keeps aggregating
    print(
        f"session: {session.num_reports} reports, "
        f"{session.metadata['wire_bytes_per_report']:.1f} wire bytes/user, "
        f"snapshot answers {len(mid_stream.workload.marginals())} marginals"
    )

    # 4. Query any 1- or 2-way marginal on demand and compare with the truth.
    for attributes in (["CC", "Tip"], ["M_pick", "M_drop"], ["Night_pick"]):
        private = estimator.query(attributes)
        exact = data.marginal(attributes)
        tv = exact.total_variation_distance(private)
        print(f"\nmarginal over {attributes} (total variation error {tv:.4f})")
        print(f"  exact   : {np.round(exact.values, 4)}")
        print(f"  private : {np.round(private.values, 4)}")


if __name__ == "__main__":
    main()
