"""Setup shim so that legacy (non-PEP-517) editable installs work offline.

The canonical package metadata lives in ``pyproject.toml``; this file only
exists because the offline environment lacks the ``wheel`` package needed for
PEP 660 editable installs (``pip install -e . --no-build-isolation`` falls
back to ``setup.py develop`` when invoked with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
